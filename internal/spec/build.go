package spec

import (
	"fmt"
	"sync"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/checkpoint"
	"vinfra/internal/cm"
	"vinfra/internal/det"
	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/mobility"
	"vinfra/internal/radio"
	"vinfra/internal/shard"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// fieldPad extends the virtual-node grid's bounding box on every side to
// form the roaming area (targets, listeners) and the cell jammer's bounds.
const fieldPad = 2.0

// Target is one roaming beacon device of a tracker world.
type Target struct {
	Name string
	ID   sim.NodeID
}

// World is a built deployment: the engine/deployment/monitor stack one spec
// describes, plus the virtual-round cursor and churn counters that make a
// run resumable. A World is not safe for concurrent use — one goroutine
// drives it (the service runs one goroutine per tenant); the Monitor alone
// is safe to read concurrently with stepping.
type World struct {
	Spec   Spec
	Eng    *sim.Engine
	Dep    *vi.Deployment
	Mon    *vi.Monitor
	Medium *radio.Medium
	Locs   []geo.Point
	// Observer collects tracking digests (app "tracker" with targets).
	Observer *apps.ObserverClient
	Targets  []Target

	per int
	vr  int

	mu     sync.Mutex
	joins  int
	resets int
}

// counterState is the default virtual node program's state: it counts
// client messages and broadcasts the count when scheduled (the reference
// program of the experiment suite).
type counterState struct {
	Pings int
}

func counterProgram(sched vi.Schedule) func(vi.VNodeID) vi.Program {
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[counterState]{
			InitState: func(vi.VNodeID, geo.Point) counterState { return counterState{} },
			Step: func(s counterState, _ int, in vi.RoundInput) counterState {
				s.Pings += len(in.Msgs)
				return s
			},
			Out: func(s counterState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				return vi.Text(fmt.Sprintf("count=%d", s.Pings))
			},
			EncodeState: func(dst []byte, s counterState) []byte {
				return wire.AppendUvarint(dst, uint64(s.Pings))
			},
			DecodeState: func(d *wire.Decoder) (counterState, error) {
				return counterState{Pings: int(d.Uvarint())}, d.Err()
			},
		}
	}
}

// Build turns a spec into a runnable world. The construction is a pure
// function of the spec: every Attach happens in a fixed order (replicas,
// pingers, targets, observer, listeners) and every seed derives from the
// spec seed, so the same spec always produces the same world — and, driven
// the same number of rounds, byte-identical snapshots.
func Build(s Spec) (*World, error) {
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	grid := geo.Grid{Spacing: s.Grid.Spacing, Cols: s.Grid.Cols, Rows: s.Grid.Rows}
	locs := grid.Locations()
	radii := geo.Radii{R1: s.Radii.R1, R2: s.Radii.R2}
	sched := vi.BuildSchedule(locs, radii)

	cfg := vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		VMax:      s.Devices.VMax,
	}
	switch s.App {
	case "tracker":
		cfg.Program = apps.TrackerProgram(sched, apps.TrackerConfig{})
	default:
		cfg.Program = counterProgram(sched)
	}
	if s.Leader == "fixed" {
		factories := make([]cm.Factory, len(locs))
		for v := range locs {
			factories[v], _ = cm.NewFixed(sim.NodeID(v * s.Devices.Replicas))
		}
		cfg.NewCM = func(v vi.VNodeID, env sim.Env) cm.Manager {
			return factories[v](env)
		}
	}
	dep, err := vi.NewDeployment(cfg)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}

	bounds := grid.Bounds()
	area := geo.Rect{
		Min: geo.Point{X: bounds.Min.X - fieldPad, Y: bounds.Min.Y - fieldPad},
		Max: geo.Point{X: bounds.Max.X + fieldPad, Y: bounds.Max.Y + fieldPad},
	}

	var jammers faults.Jammers
	for i := range s.Faults {
		if s.Faults[i].IsJammer() {
			jammers = append(jammers, s.Faults[i].jammer(area, locs))
		}
	}
	mediumCfg := radio.Config{
		Radii:    radii,
		Detector: cd.AC{},
		Seed:     s.Seed,
	}
	switch len(jammers) {
	case 0:
	case 1:
		mediumCfg.Adversary = jammers[0]
	default:
		mediumCfg.Adversary = jammers
	}
	engOpts := []sim.Option{sim.WithSeed(s.Seed)}
	if s.Engine.Parallel {
		mediumCfg.Mode = radio.ModeGrid
		mediumCfg.Parallel = true
		mediumCfg.Workers = s.Engine.Workers
		if s.Engine.Workers > 0 {
			engOpts = append(engOpts, sim.WithWorkers(s.Engine.Workers))
		} else {
			engOpts = append(engOpts, sim.WithParallel())
		}
	}
	if s.Engine.Shards > 0 {
		// Each shard medium delivers its residents sequentially (the shard
		// is the parallelism unit) with ModeAuto, the viBed configuration.
		shardCfg := mediumCfg
		shardCfg.Mode = radio.ModeAuto
		shardCfg.Parallel = false
		cols, rows := shard.Split(s.Engine.Shards)
		engOpts = append(engOpts, sim.WithRegionShards(cols, rows, radii.R2, func() sim.Medium {
			return radio.MustMedium(shardCfg)
		}))
	}
	medium, err := radio.NewMedium(mediumCfg)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}

	w := &World{
		Spec:   s,
		Eng:    sim.NewEngine(medium, engOpts...),
		Dep:    dep,
		Mon:    vi.NewMonitor(),
		Medium: medium,
		Locs:   locs,
		per:    dep.Timing().RoundsPerVRound(),
	}

	// Replicas: bootstrapped emulators clustered inside each region.
	for _, loc := range locs {
		for i := 0; i < s.Devices.Replicas; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.5, Y: loc.Y + 0.2}
			w.Eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				em := dep.NewEmulator(env, true)
				em.SetHooks(vi.EmulatorHooks{
					OnOutput: w.Mon.Observe,
					OnJoin: func(vi.VNodeID, int) {
						w.mu.Lock()
						w.joins++
						w.mu.Unlock()
					},
					OnReset: func(vi.VNodeID, int) {
						w.mu.Lock()
						w.resets++
						w.mu.Unlock()
					},
				})
				return em
			})
		}
	}

	// Pingers: one stationary client per region, staggered so neighboring
	// pings don't collide every client slot.
	if s.Devices.Pingers {
		for v, loc := range locs {
			v := v
			w.Eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
				return dep.NewClient(env, vi.ClientFunc(
					func(vr int, _ []vi.Message, _ bool) *vi.Message {
						if vr%4 != v%4 {
							return nil
						}
						return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
					}))
			})
		}
	}

	// Targets: roaming beacon clients, plus one stationary observer in the
	// corner collecting tracking digests.
	if s.Devices.Targets > 0 {
		for i := 0; i < s.Devices.Targets; i++ {
			name := fmt.Sprintf("target-%02d", i)
			start := geo.Point{X: area.Min.X + float64(i), Y: area.Min.Y}
			id := w.Eng.Attach(start, &mobility.RandomWaypoint{Area: area, VMax: s.Devices.VMax},
				func(env sim.Env) sim.Node {
					return dep.NewClient(env, &apps.TargetClient{
						Name:   name,
						Period: 2,
						Pos:    env.Location,
					})
				})
			w.Targets = append(w.Targets, Target{Name: name, ID: id})
		}
		w.Observer = &apps.ObserverClient{}
		w.Eng.Attach(locs[0], nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, w.Observer)
		})
	}

	// Listeners: receive-only roaming clients spread uniformly over the
	// field by a seed-keyed stream, so the population is a pure function of
	// the spec.
	if s.Devices.Listeners > 0 {
		rng := det.NewStream(s.Seed + 404)
		for i := 0; i < s.Devices.Listeners; i++ {
			pos := geo.Point{
				X: area.Min.X + rng.Float64()*area.Width(),
				Y: area.Min.Y + rng.Float64()*area.Height(),
			}
			w.Eng.Attach(pos, &mobility.RandomWaypoint{Area: area, VMax: s.Devices.VMax},
				func(env sim.Env) sim.Node {
					return dep.NewClient(env, vi.ClientFunc(
						func(int, []vi.Message, bool) *vi.Message { return nil }))
				})
		}
	}

	// Engine-level faults, in spec order (jammers already ride the medium).
	for i := range s.Faults {
		if s.Faults[i].IsJammer() {
			continue
		}
		f, err := s.Faults[i].engineFault()
		if err != nil {
			return nil, err
		}
		w.Eng.AddFault(f)
	}
	return w, nil
}

// VRound returns the next virtual round to execute (0-based; equal to
// VRounds when the run is complete).
func (w *World) VRound() int { return w.vr }

// VRounds returns the spec's virtual-round horizon.
func (w *World) VRounds() int { return w.Spec.VRounds }

// RoundsPerVRound returns the deployment's radio rounds per virtual round.
func (w *World) RoundsPerVRound() int { return w.per }

// StepVRound executes one virtual round.
func (w *World) StepVRound() {
	w.Eng.Run(w.per)
	w.vr++
}

// Joins returns the number of join-protocol completions observed.
func (w *World) Joins() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.joins
}

// Resets returns the number of region resets observed.
func (w *World) Resets() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resets
}

// Report returns virtual node v's availability accounting through the
// virtual rounds executed so far (instances no replica reported count as
// unavailable — the right accounting under adversaries).
func (w *World) Report(v vi.VNodeID) vi.AvailabilityReport {
	return w.Mon.ReportThrough(v, w.vr)
}

// Summary aggregates availability over the whole deployment through the
// virtual rounds executed so far.
func (w *World) Summary() vi.AvailabilitySummary {
	return w.Mon.SummaryThrough(len(w.Locs), w.vr)
}

// InjectFault validates f, registers it on the engine, and appends it to
// the world's effective spec — so Spec.JSON() after an injection is exactly
// the spec that, listed up front, reproduces the run (the fault's default
// seed derives from its index, which is the same either way). Jammer kinds
// are build-time only and rejected here.
func (w *World) InjectFault(f Fault) error {
	if f.IsJammer() {
		return fmt.Errorf("spec: %s rides in the medium configuration and cannot be injected mid-run (list it in the spec)", f.Kind)
	}
	f.applyDefaults(&w.Spec, len(w.Spec.Faults))
	if err := f.validate(); err != nil {
		return fmt.Errorf("spec: fault: %w", err)
	}
	ef, err := f.engineFault()
	if err != nil {
		return err
	}
	w.Eng.AddFault(ef)
	w.Spec.Faults = append(w.Spec.Faults, f)
	return nil
}

// driverBytes encodes the world's own resume state: the virtual-round
// cursor and the churn counters that live outside the engine snapshot.
func (w *World) driverBytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	dst := wire.AppendUvarint(nil, uint64(w.vr))
	dst = wire.AppendUvarint(dst, uint64(w.joins))
	return wire.AppendUvarint(dst, uint64(w.resets))
}

// Checkpoint captures the full run state at the current virtual-round
// boundary. The bytes are canonical: two runs of the same effective spec
// checkpointed at the same virtual round encode identically, whatever
// process (or machine) drove them — the property the service's API
// determinism contract is pinned on.
func (w *World) Checkpoint() checkpoint.Checkpoint {
	return checkpoint.Checkpoint{
		Engine:  w.Eng.Snapshot(),
		Medium:  w.Medium.Snapshot(),
		Monitor: w.Mon.Snapshot(),
		Driver:  w.driverBytes(),
	}
}

// Restore lays a checkpoint over a freshly built world. The world must have
// been built from the same effective spec the checkpoint was taken under
// (including any faults injected before the checkpoint); the engine rejects
// mismatched populations, seeds, shard geometry and fault sets.
func (w *World) Restore(cp checkpoint.Checkpoint) error {
	d := wire.Dec(cp.Driver)
	vr := int(d.Uvarint())
	joins := int(d.Uvarint())
	resets := int(d.Uvarint())
	if err := d.Finish(); err != nil {
		return fmt.Errorf("spec: restore: driver state: %w", err)
	}
	if err := w.Medium.Restore(cp.Medium); err != nil {
		return fmt.Errorf("spec: restore: %w", err)
	}
	if err := w.Eng.Restore(cp.Engine); err != nil {
		return fmt.Errorf("spec: restore: %w", err)
	}
	w.Mon.Restore(cp.Monitor)
	w.mu.Lock()
	w.vr, w.joins, w.resets = vr, joins, resets
	w.mu.Unlock()
	return nil
}

// Lookup returns the observer's freshest believed position for a tracked
// target name (tracker worlds only).
func (w *World) Lookup(name string) (geo.Point, bool) {
	if w.Observer == nil {
		return geo.Point{}, false
	}
	sg, ok := w.Observer.Lookup(name)
	if !ok {
		return geo.Point{}, false
	}
	return geo.Point{X: sg.X, Y: sg.Y}, true
}

// Ensure cha stays linked for the hook signatures (EmulatorHooks.OnOutput
// receives cha.Output); the blank use keeps the import honest if hooks
// change shape.
var _ func(vi.VNodeID, cha.Output) = (*vi.Monitor)(nil).Observe
