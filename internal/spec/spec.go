// Package spec defines the versioned JSON deployment spec — the single
// serializable description of "a world" that every front end constructs
// simulations through: cmd/visim (-spec), cmd/visimd (POST /v1/sims) and
// tests. A spec names the grid geometry, radio parameters, device
// population, VI application, engine configuration (parallel / region
// shards) and a deterministic fault schedule; Build turns it into the full
// engine/deployment/monitor stack. The same spec and seed produce a
// byte-identical run wherever it is driven from — the determinism contract
// extends through the API surface.
//
// # Format (vinfra-spec/v1)
//
//	{
//	  "version": "vinfra-spec/v1",
//	  "seed": 7,
//	  "vrounds": 60,
//	  "grid": {"cols": 3, "rows": 3, "spacing": 6},
//	  "radii": {"r1": 10, "r2": 20},
//	  "app": "counter",
//	  "devices": {"replicas": 3, "pingers": true, "listeners": 0,
//	              "targets": 0, "vmax": 0.02},
//	  "engine": {"parallel": false, "workers": 0, "shards": 0},
//	  "leader": "fixed",
//	  "faults": [
//	    {"kind": "region_wipe", "x": 0, "y": 0, "radius": 1, "at": 210},
//	    {"kind": "region_jammer", "radius": 2.5, "period": 84, "burst": 21}
//	  ]
//	}
//
// Decoding is strict: unknown fields are rejected, as are fields a fault
// kind does not use, so a typo'd spec fails loudly instead of silently
// running a different world. Defaults (seed 1, spacing 6, radii 10/20,
// three replicas, 60 virtual rounds, app "counter", fixed leaders) are
// materialized by Parse; the effective spec a run actually used is
// reproducible via JSON (visim -dump-spec prints it).
//
// Fault windows and strike rounds are radio rounds, not virtual rounds; a
// virtual round is Schedule.Len()+12 radio rounds (vi.Timing). Fault seeds
// default to seed + 101*(i+1), where i is the fault's index — stable
// whether the fault was listed in the spec or injected mid-run at that
// index, which is what keeps an HTTP-injected fault byte-identical to the
// same fault listed in the spec.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the spec format this package reads and writes.
const Version = "vinfra-spec/v1"

// MaxDevices bounds the total node population a spec may describe; the
// daemon refuses larger worlds rather than dying on an absurd request.
const MaxDevices = 1 << 20

// Spec is one deployment description. The zero value is not runnable;
// obtain a valid spec through Parse (strict decode + defaults + validation)
// or fill the fields and call ApplyDefaults then Validate.
type Spec struct {
	Version string `json:"version"`
	// Seed is the master seed for every random stream in the run.
	Seed int64 `json:"seed,omitempty"`
	// VRounds is the run's virtual-round horizon.
	VRounds int  `json:"vrounds,omitempty"`
	Grid    Grid `json:"grid"`
	// Radii are the quasi-unit-disk radio parameters.
	Radii Radii `json:"radii,omitempty"`
	// App selects the virtual node program: "counter" (each virtual node
	// counts client messages and broadcasts the count) or "tracker" (the
	// target-tracking service of cmd/visim).
	App     string  `json:"app,omitempty"`
	Devices Devices `json:"devices,omitempty"`
	Engine  Engine  `json:"engine,omitempty"`
	// Leader selects the contention-manager regime: "fixed" (the region's
	// first replica leads; the managed-deployment setting every soak uses)
	// or "regional" (the paper's leader-election manager).
	Leader string `json:"leader,omitempty"`
	// Faults is the deterministic adversary schedule, in order. Engine
	// kinds may also be appended mid-run (World.InjectFault); jammer kinds
	// ride in the medium configuration and are build-time only.
	Faults []Fault `json:"faults,omitempty"`
}

// Grid places the virtual nodes on a Cols x Rows grid.
type Grid struct {
	Cols    int     `json:"cols"`
	Rows    int     `json:"rows"`
	Spacing float64 `json:"spacing,omitempty"`
}

// Radii mirrors geo.Radii in spec form.
type Radii struct {
	R1 float64 `json:"r1,omitempty"`
	R2 float64 `json:"r2,omitempty"`
}

// Devices describes the device population tethered to the deployment.
type Devices struct {
	// Replicas is the number of bootstrapped emulator devices per virtual
	// node.
	Replicas int `json:"replicas,omitempty"`
	// Pingers attaches one stationary client per region, staggered so
	// neighboring pings do not collide every client slot.
	Pingers bool `json:"pingers,omitempty"`
	// Listeners attaches roaming receive-only clients spread uniformly
	// over the field (the city-scale population filler).
	Listeners int `json:"listeners,omitempty"`
	// Targets attaches roaming beacon clients plus one stationary
	// observer (app "tracker" only).
	Targets int `json:"targets,omitempty"`
	// VMax bounds device speed (roaming mobility and the regional
	// contention manager's eligibility margin).
	VMax float64 `json:"vmax,omitempty"`
}

// Engine selects the execution strategy. All settings are cost-only: the
// run's output is byte-identical whatever they are set to.
type Engine struct {
	// Parallel shards per-round fan-outs across a worker pool.
	Parallel bool `json:"parallel,omitempty"`
	// Workers caps the pool (0 = GOMAXPROCS); implies Parallel.
	Workers int `json:"workers,omitempty"`
	// Shards > 0 runs the region-sharded engine on a near-square split.
	Shards int `json:"shards,omitempty"`
}

// Parse strictly decodes, defaults and validates one spec document.
// Unknown fields, trailing data and invalid configurations are errors.
func Parse(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after the spec object")
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ApplyDefaults materializes every defaulted field in place, so the
// resulting spec re-encodes as the complete configuration the run uses.
func (s *Spec) ApplyDefaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.VRounds == 0 {
		s.VRounds = 60
	}
	if s.Grid.Spacing == 0 {
		s.Grid.Spacing = 6
	}
	if s.Radii.R1 == 0 {
		s.Radii.R1 = 10
	}
	if s.Radii.R2 == 0 {
		s.Radii.R2 = 20
	}
	if s.App == "" {
		s.App = "counter"
	}
	if s.Devices.Replicas == 0 {
		s.Devices.Replicas = 3
	}
	if s.Devices.VMax == 0 {
		s.Devices.VMax = 0.02
	}
	if s.Engine.Workers > 0 {
		s.Engine.Parallel = true
	}
	if s.Leader == "" {
		s.Leader = "fixed"
	}
	for i := range s.Faults {
		s.Faults[i].applyDefaults(s, i)
	}
}

// Validate checks the defaulted spec. It never mutates the spec.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: version %q, this build reads %q", s.Version, Version)
	}
	if s.Grid.Cols < 1 || s.Grid.Rows < 1 {
		return fmt.Errorf("spec: grid must be at least 1x1 (got %dx%d)", s.Grid.Cols, s.Grid.Rows)
	}
	if s.Grid.Spacing <= 0 {
		return fmt.Errorf("spec: grid spacing must be positive (got %g)", s.Grid.Spacing)
	}
	if s.Radii.R1 <= 0 || s.Radii.R2 < s.Radii.R1 {
		return fmt.Errorf("spec: radii need 0 < r1 <= r2 (got r1=%g r2=%g)", s.Radii.R1, s.Radii.R2)
	}
	if s.VRounds < 1 {
		return fmt.Errorf("spec: vrounds must be at least 1 (got %d)", s.VRounds)
	}
	switch s.App {
	case "counter", "tracker":
	default:
		return fmt.Errorf("spec: unknown app %q (want counter or tracker)", s.App)
	}
	switch s.Leader {
	case "fixed", "regional":
	default:
		return fmt.Errorf("spec: unknown leader %q (want fixed or regional)", s.Leader)
	}
	d := s.Devices
	if d.Replicas < 1 {
		return fmt.Errorf("spec: devices.replicas must be at least 1 (got %d)", d.Replicas)
	}
	if d.Listeners < 0 || d.Targets < 0 {
		return fmt.Errorf("spec: devices.listeners and devices.targets must not be negative")
	}
	if d.Targets > 0 && s.App != "tracker" {
		return fmt.Errorf("spec: devices.targets needs app \"tracker\" (got %q)", s.App)
	}
	if d.VMax <= 0 {
		return fmt.Errorf("spec: devices.vmax must be positive (got %g)", d.VMax)
	}
	if n := s.TotalDevices(); n > MaxDevices {
		return fmt.Errorf("spec: %d devices exceed the %d-device limit", n, MaxDevices)
	}
	if s.Engine.Workers < 0 || s.Engine.Shards < 0 {
		return fmt.Errorf("spec: engine.workers and engine.shards must not be negative")
	}
	for i := range s.Faults {
		if err := s.Faults[i].validate(); err != nil {
			return fmt.Errorf("spec: faults[%d]: %w", i, err)
		}
	}
	return nil
}

// TotalDevices is the node population the spec describes: replicas,
// pingers, listeners, targets, and the tracker observer.
func (s *Spec) TotalDevices() int {
	vnodes := s.Grid.Cols * s.Grid.Rows
	n := vnodes * s.Devices.Replicas
	if s.Devices.Pingers {
		n += vnodes
	}
	n += s.Devices.Listeners
	if s.Devices.Targets > 0 {
		n += s.Devices.Targets + 1 // plus the observer
	}
	return n
}

// JSON renders the spec as indented canonical JSON (field order is the
// struct order, so the same spec always produces the same bytes).
func (s Spec) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec contains only plain data types; Marshal cannot fail.
		panic("spec: marshal: " + err.Error())
	}
	return append(b, '\n')
}
