package spec

import (
	"bytes"
	"testing"
)

// smallSpec is the shared fixture: a 2x1 counter world with pingers, small
// enough that a handful of virtual rounds stays fast under -race.
func smallSpec(t *testing.T) Spec {
	t.Helper()
	s, err := Parse([]byte(`{
		"version": "vinfra-spec/v1", "seed": 9, "vrounds": 8,
		"grid": {"cols": 2, "rows": 1},
		"devices": {"pingers": true}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func run(t *testing.T, w *World, vrounds int) {
	t.Helper()
	for i := 0; i < vrounds; i++ {
		w.StepVRound()
	}
}

func TestBuildDeterministic(t *testing.T) {
	s := smallSpec(t)
	a, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer a.Eng.Close()
	b, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer b.Eng.Close()
	run(t, a, 6)
	run(t, b, 6)
	if !bytes.Equal(a.Checkpoint().Encode(), b.Checkpoint().Encode()) {
		t.Fatal("two runs of the same spec diverged")
	}
	if a.Summary().MeanAvailability != 1 {
		t.Fatalf("fault-free availability %.3f, want 1.0", a.Summary().MeanAvailability)
	}
}

func TestShardedMatchesSequential(t *testing.T) {
	s := smallSpec(t)
	seq, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer seq.Eng.Close()
	s.Engine.Shards = 2
	shd, err := Build(s)
	if err != nil {
		t.Fatalf("Build sharded: %v", err)
	}
	defer shd.Eng.Close()
	run(t, seq, 4)
	run(t, shd, 4)
	// Engine snapshots record the shard plan and halo accounting, so the
	// cross-configuration contract is the monitor bytes plus the core stats.
	if !bytes.Equal(seq.Mon.Snapshot().AppendTo(nil), shd.Mon.Snapshot().AppendTo(nil)) {
		t.Fatal("sharded run diverged from sequential (monitor)")
	}
	seqStats, shdStats := seq.Eng.Stats(), shd.Eng.Stats()
	seqStats.HaloTransmissions, shdStats.HaloTransmissions = 0, 0
	if seqStats != shdStats {
		t.Fatalf("sharded stats %+v diverged from sequential %+v", shdStats, seqStats)
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	s := smallSpec(t)
	ref, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer ref.Eng.Close()
	run(t, ref, 6)
	want := ref.Checkpoint().Encode()

	half, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	run(t, half, 3)
	cp := half.Checkpoint()
	half.Eng.Close()

	resumed, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer resumed.Eng.Close()
	if err := resumed.Restore(cp); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if resumed.VRound() != 3 {
		t.Fatalf("restored vround %d, want 3", resumed.VRound())
	}
	run(t, resumed, 3)
	if !bytes.Equal(resumed.Checkpoint().Encode(), want) {
		t.Fatal("restored run diverged from the straight run")
	}
}

// TestInjectFaultMatchesListedFault pins the injection equivalence the
// service API leans on: building from a spec that lists a fault is
// byte-identical to building without it and injecting the same fault
// mid-run, before its window opens — including the defaulted seed, which
// derives from the fault's index either way.
func TestInjectFaultMatchesListedFault(t *testing.T) {
	s := smallSpec(t)
	burst := Fault{Kind: KindCrashBurst, From: 150, Until: 250, Period: 30, P: 0.5}

	listed := s
	listed.Faults = []Fault{burst}
	listed.ApplyDefaults()
	ref, err := Build(listed)
	if err != nil {
		t.Fatalf("Build listed: %v", err)
	}
	defer ref.Eng.Close()
	run(t, ref, 6)

	inj, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer inj.Eng.Close()
	run(t, inj, 2) // 2 vrounds < 150 radio rounds? per-vround is ~50; stay before From.
	if got := inj.VRound() * inj.RoundsPerVRound(); got >= burst.From {
		t.Fatalf("test drove past the fault window opening (round %d >= %d)", got, burst.From)
	}
	if err := inj.InjectFault(Fault{Kind: KindCrashBurst, From: 150, Until: 250, Period: 30, P: 0.5}); err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
	run(t, inj, 4)

	if !bytes.Equal(ref.Checkpoint().Encode(), inj.Checkpoint().Encode()) {
		t.Fatal("injected fault diverged from the same fault listed in the spec")
	}
	if inj.Spec.Faults[0].Seed != listed.Faults[0].Seed {
		t.Fatalf("injected fault seed %d != listed %d", inj.Spec.Faults[0].Seed, listed.Faults[0].Seed)
	}
	if string(inj.Spec.JSON()) != string(listed.JSON()) {
		t.Fatal("effective spec after injection differs from the listed spec")
	}
}

func TestInjectFaultRejectsJammers(t *testing.T) {
	w, err := Build(smallSpec(t))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer w.Eng.Close()
	if err := w.InjectFault(Fault{Kind: KindCellJammer, Cells: 2}); err == nil {
		t.Fatal("jammer injection accepted")
	}
	if err := w.InjectFault(Fault{Kind: "sharknado"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildTrackerWorld(t *testing.T) {
	s, err := Parse([]byte(`{
		"version": "vinfra-spec/v1", "seed": 3, "vrounds": 12,
		"grid": {"cols": 2, "rows": 1},
		"app": "tracker",
		"devices": {"targets": 1, "listeners": 2}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer w.Eng.Close()
	if len(w.Targets) != 1 || w.Observer == nil {
		t.Fatalf("tracker world missing targets/observer: %+v", w.Targets)
	}
	run(t, w, 12)
	if _, ok := w.Lookup("target-00"); !ok {
		t.Fatal("observer never saw target-00")
	}
}

func TestBuildWithJammerDegradesAvailability(t *testing.T) {
	s := smallSpec(t)
	s.VRounds = 6
	s.Faults = []Fault{{
		Kind:   KindRegionJammer,
		Radius: 3,
		From:   0,
	}}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	w, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer w.Eng.Close()
	run(t, w, 6)
	if avail := w.Summary().MeanAvailability; avail >= 1 {
		t.Fatalf("always-on region jammer left availability at %.3f", avail)
	}
}
