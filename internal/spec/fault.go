package spec

import (
	"fmt"

	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// Fault is one spec-constructible adversary. Kind selects the
// internal/faults implementation; the remaining fields are flat, and a
// field a kind does not use must be left unset — validate rejects it, the
// same strictness the JSON decoder applies to unknown field names.
//
// Engine kinds (region_wipe, crash_burst, churn_storm, herd) strike through
// sim.Engine.AddFault and may be injected mid-run; jammer kinds
// (cell_jammer, region_jammer) ride in the radio medium's configuration and
// exist only at build time.
//
// All rounds (from, until, at, period, burst) are radio rounds.
type Fault struct {
	Kind string `json:"kind"`
	// From and Until bound the fault's active window ([From, Until);
	// Until 0 means no horizon). region_wipe uses At instead.
	From  int `json:"from,omitempty"`
	Until int `json:"until,omitempty"`
	// At is region_wipe's strike round.
	At int `json:"at,omitempty"`
	// X, Y are region_wipe's center, or herd's focus.
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
	// Radius is region_wipe's blast radius or region_jammer's footprint
	// (defaults to r1/4, the replication-region radius).
	Radius float64 `json:"radius,omitempty"`
	// Period is the duty-cycle length (crash_burst, churn_storm,
	// region_jammer); <= 0 means every round.
	Period int `json:"period,omitempty"`
	// P is crash_burst's per-node crash probability per burst.
	P float64 `json:"p,omitempty"`
	// Kills is churn_storm's victims per front.
	Kills int `json:"kills,omitempty"`
	// Frac and Step are herd's cohort fraction and per-round pull.
	Frac float64 `json:"frac,omitempty"`
	Step float64 `json:"step,omitempty"`
	// Cells and CellSize parameterize cell_jammer (CellSize defaults to
	// r2, the medium's own bucketing).
	Cells    int     `json:"cells,omitempty"`
	CellSize float64 `json:"cell_size,omitempty"`
	// Burst and Rotate parameterize region_jammer's duty cycle.
	Burst  int `json:"burst,omitempty"`
	Rotate int `json:"rotate,omitempty"`
	// Seed drives the fault's hash draws; defaults to the spec seed +
	// 101*(index+1).
	Seed int64 `json:"seed,omitempty"`
}

// Engine fault kinds may be injected mid-run; jammer kinds are fixed in the
// medium configuration at build time.
const (
	KindRegionWipe   = "region_wipe"
	KindCrashBurst   = "crash_burst"
	KindChurnStorm   = "churn_storm"
	KindHerd         = "herd"
	KindCellJammer   = "cell_jammer"
	KindRegionJammer = "region_jammer"
)

// IsJammer reports whether the fault kind is a radio-layer jammer (build
// time only) rather than an engine-level fault.
func (f *Fault) IsJammer() bool {
	return f.Kind == KindCellJammer || f.Kind == KindRegionJammer
}

// applyDefaults fills the fault's defaulted fields from the parent spec;
// i is the fault's index in the spec's fault list.
func (f *Fault) applyDefaults(s *Spec, i int) {
	if f.Seed == 0 {
		f.Seed = s.Seed + 101*int64(i+1)
	}
	switch f.Kind {
	case KindRegionJammer:
		if f.Radius == 0 {
			f.Radius = s.Radii.R1 / 4
		}
	case KindCellJammer:
		if f.CellSize == 0 {
			f.CellSize = s.Radii.R2
		}
	}
}

// fieldUse names a flat Fault field and whether it is set; validate checks
// the set fields against the kind's allowed list.
type fieldUse struct {
	name string
	set  bool
}

// allowedFields maps each kind to the flat fields it reads (beyond kind,
// from, until and seed, which every kind may set).
var allowedFields = map[string][]string{
	KindRegionWipe:   {"at", "x", "y", "radius"},
	KindCrashBurst:   {"period", "p"},
	KindChurnStorm:   {"period", "kills"},
	KindHerd:         {"x", "y", "frac", "step"},
	KindCellJammer:   {"cells", "cell_size"},
	KindRegionJammer: {"radius", "period", "burst", "rotate"},
}

func (f *Fault) validate() error {
	allowed, ok := allowedFields[f.Kind]
	if !ok {
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	uses := []fieldUse{
		{"at", f.At != 0},
		{"x", f.X != 0},
		{"y", f.Y != 0},
		{"radius", f.Radius != 0},
		{"period", f.Period != 0},
		{"p", f.P != 0},
		{"kills", f.Kills != 0},
		{"frac", f.Frac != 0},
		{"step", f.Step != 0},
		{"cells", f.Cells != 0},
		{"cell_size", f.CellSize != 0},
		{"burst", f.Burst != 0},
		{"rotate", f.Rotate != 0},
	}
	for _, u := range uses {
		if !u.set {
			continue
		}
		ok := false
		for _, a := range allowed {
			if a == u.name {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s does not apply to kind %q", u.name, f.Kind)
		}
	}
	if f.From < 0 || f.Until < 0 || f.Until != 0 && f.Until <= f.From {
		return fmt.Errorf("window needs 0 <= from < until (got from=%d until=%d)", f.From, f.Until)
	}
	switch f.Kind {
	case KindRegionWipe:
		if f.Radius <= 0 {
			return fmt.Errorf("region_wipe needs a positive radius")
		}
	case KindCrashBurst:
		if f.P <= 0 || f.P > 1 {
			return fmt.Errorf("crash_burst needs p in (0, 1] (got %g)", f.P)
		}
	case KindChurnStorm:
		if f.Kills < 1 {
			return fmt.Errorf("churn_storm needs kills >= 1 (got %d)", f.Kills)
		}
	case KindHerd:
		if f.Frac <= 0 || f.Frac > 1 {
			return fmt.Errorf("herd needs frac in (0, 1] (got %g)", f.Frac)
		}
		if f.Step <= 0 {
			return fmt.Errorf("herd needs a positive step")
		}
	case KindCellJammer:
		if f.Cells < 1 {
			return fmt.Errorf("cell_jammer needs cells >= 1 (got %d)", f.Cells)
		}
		if f.CellSize <= 0 {
			return fmt.Errorf("cell_jammer needs a positive cell_size")
		}
	case KindRegionJammer:
		if f.Radius <= 0 {
			return fmt.Errorf("region_jammer needs a positive radius")
		}
		if f.Burst < 0 || f.Rotate < 0 {
			return fmt.Errorf("region_jammer burst and rotate must not be negative")
		}
	}
	return nil
}

// window converts the spec window to the faults package's.
func (f *Fault) window() faults.Window {
	return faults.Window{From: sim.Round(f.From), Until: sim.Round(f.Until)}
}

// engineFault constructs the sim.Fault for an engine kind. The fault must
// be validated first; jammer kinds return an error.
func (f *Fault) engineFault() (sim.Fault, error) {
	switch f.Kind {
	case KindRegionWipe:
		return faults.RegionWipe{
			Center: geo.Point{X: f.X, Y: f.Y},
			Radius: f.Radius,
			At:     sim.Round(f.At),
		}, nil
	case KindCrashBurst:
		return &faults.CrashBurst{
			Window: f.window(),
			Period: f.Period,
			P:      f.P,
			Seed:   f.Seed,
		}, nil
	case KindChurnStorm:
		// Spec-built storms are pure attrition: Respawn closures are code,
		// which a serializable spec cannot carry.
		return &faults.ChurnStorm{
			Window: f.window(),
			Period: f.Period,
			Kills:  f.Kills,
			Seed:   f.Seed,
		}, nil
	case KindHerd:
		return &faults.Herd{
			Window: f.window(),
			Focus:  geo.Point{X: f.X, Y: f.Y},
			Frac:   f.Frac,
			Step:   f.Step,
			Seed:   f.Seed,
		}, nil
	default:
		return nil, fmt.Errorf("spec: %q is not an engine fault kind", f.Kind)
	}
}

// jammer constructs the radio adversary for a jammer kind: cell_jammer
// roams the padded field bounds, region_jammer parks on the virtual node
// locations (the E13 configuration).
func (f *Fault) jammer(bounds geo.Rect, locs []geo.Point) radio.Adversary {
	switch f.Kind {
	case KindCellJammer:
		return &faults.CellJammer{
			Window:   f.window(),
			Bounds:   bounds,
			CellSize: f.CellSize,
			Cells:    f.Cells,
			Seed:     f.Seed,
		}
	case KindRegionJammer:
		return &faults.RegionJammer{
			Window:  f.window(),
			Targets: locs,
			Radius:  f.Radius,
			Period:  f.Period,
			Burst:   f.Burst,
			Rotate:  f.Rotate,
			Seed:    f.Seed,
		}
	default:
		return nil
	}
}
