package sim

import (
	"testing"

	"vinfra/internal/geo"
)

// TestEngineStepSteadyStateAllocs gates the round loop's allocation budget:
// after warm-up, Engine.Step at 10k nodes must run allocation-free on the
// engine's side (the NodeInfo view, transmission list and Transmit slots
// are reused buffers). Before buffer reuse this was 23 allocs/round
// (~2.6 MB); the gate keeps the win from silently regressing.
func TestEngineStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		name   string
		opts   []Option
		budget float64
	}{
		// Sequential, parallel and region-sharded rounds all allocate
		// nothing once warm: the persistent worker runtime hands chunks to
		// parked helpers over preallocated channels (the old spawn-per-round
		// path cost ~64 allocs/round in goroutine and WaitGroup churn), and
		// the parallel partition reuses its counting-sort scratch.
		{"sequential", nil, 0},
		{"parallel", []Option{WithWorkers(4)}, 0},
		{"sharded-parallel", []Option{
			WithWorkers(4), WithParallel(),
			WithRegionShards(4, 2, 20, func() Medium { return &nullMedium{} }),
		}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(&nullMedium{}, append([]Option{WithSeed(1)}, tc.opts...)...)
			defer e.Close()
			for i := 0; i < 10_000; i++ {
				e.Attach(geo.Point{X: float64(i%500) * 0.5, Y: float64(i/500) * 0.5}, nil, func(env Env) Node {
					return &countNode{env: env}
				})
			}
			e.Run(3) // warm the reusable buffers and start the pool
			avg := testing.AllocsPerRun(5, func() { e.Step() })
			if avg > tc.budget {
				t.Errorf("steady-state Step allocates %.1f times per round at 10k nodes, want <= %v", avg, tc.budget)
			}
		})
	}
}
