package sim

import (
	"testing"

	"vinfra/internal/geo"
)

// TestEngineStepSteadyStateAllocs gates the round loop's allocation budget:
// after warm-up, Engine.Step at 10k nodes must run allocation-free on the
// engine's side (the NodeInfo view, transmission list and Transmit slots
// are reused buffers). Before buffer reuse this was 23 allocs/round
// (~2.6 MB); the gate keeps the win from silently regressing.
func TestEngineStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		name     string
		parallel bool
		budget   float64
	}{
		// Sequential rounds allocate nothing; parallel rounds pay only the
		// worker-pool goroutine spawns.
		{"sequential", false, 0},
		{"parallel", true, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{WithSeed(1)}
			if tc.parallel {
				opts = append(opts, WithWorkers(4))
			}
			e := NewEngine(&nullMedium{}, opts...)
			for i := 0; i < 10_000; i++ {
				e.Attach(geo.Point{X: float64(i)}, nil, func(env Env) Node {
					return &countNode{env: env}
				})
			}
			e.Run(3) // warm the reusable buffers
			avg := testing.AllocsPerRun(5, func() { e.Step() })
			if avg > tc.budget {
				t.Errorf("steady-state Step allocates %.1f times per round at 10k nodes, want <= %v", avg, tc.budget)
			}
		})
	}
}
