package sim

import (
	"fmt"
	"slices"

	"vinfra/internal/det"
	"vinfra/internal/geo"
	"vinfra/internal/wire"
)

// Snapshotter is the optional per-entity half of the snapshot contract: a
// Node, Mover or client program that carries mutable state between rounds
// implements it to let Engine.Snapshot capture that state as an opaque
// byte string and Engine.Restore put it back. The bytes are owned by the
// implementation (typically an internal/wire encoding) and are deliberately
// not a wire trio of their own — the engine treats them as a blob inside
// NodeSnapshot, which carries the canonical encoding.
//
// Entities with no mutable state (mobility.Static, stateless client
// programs) simply do not implement the interface; the engine records an
// empty blob for them and restoring a non-empty blob onto one is an error
// (it means the snapshot was taken against a different deployment).
type Snapshotter interface {
	// AppendState appends the entity's mutable state to dst and returns
	// the extended slice.
	AppendState(dst []byte) []byte
	// RestoreState replaces the entity's mutable state with one captured
	// by AppendState.
	RestoreState(data []byte) error
}

// wireEncoder is the AppendTo half of the wire trio, used to fingerprint
// registered faults without naming their concrete types.
type wireEncoder interface {
	AppendTo(dst []byte) []byte
}

// NodeSnapshot captures one attached node: engine-owned bookkeeping
// (position, liveness, RNG position) plus the node's and its mover's
// Snapshotter blobs.
type NodeSnapshot struct {
	ID    NodeID
	X, Y  float64
	Alive bool
	RNG   uint64 // det.Stream position word
	Mover []byte // mover Snapshotter blob, empty when stateless
	State []byte // node Snapshotter blob, empty when stateless
}

// AppendTo appends the canonical encoding of s to dst.
func (s NodeSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.ID))
	dst = wire.AppendFloat64(dst, s.X)
	dst = wire.AppendFloat64(dst, s.Y)
	dst = wire.AppendBool(dst, s.Alive)
	dst = wire.AppendUint64(dst, s.RNG)
	dst = wire.AppendBytes(dst, s.Mover)
	return wire.AppendBytes(dst, s.State)
}

// WireSize returns the exact encoded size of s.
func (s NodeSnapshot) WireSize() int {
	return wire.UvarintSize(uint64(s.ID)) + 8 + 8 + 1 + 8 +
		wire.BytesSize(len(s.Mover)) + wire.BytesSize(len(s.State))
}

// DecodeNodeSnapshot decodes one NodeSnapshot from d.
func DecodeNodeSnapshot(d *wire.Decoder) (NodeSnapshot, error) {
	var s NodeSnapshot
	s.ID = NodeID(d.Uvarint())
	s.X = d.Float64()
	s.Y = d.Float64()
	s.Alive = d.Bool()
	s.RNG = d.Uint64()
	s.Mover = append([]byte(nil), d.Bytes()...)
	s.State = append([]byte(nil), d.Bytes()...)
	if err := d.Err(); err != nil {
		return NodeSnapshot{}, err
	}
	return s, nil
}

// EngineSnapshot is the engine layer of a full checkpoint: everything the
// round loop owns, in canonical form. The deployment itself (mediums,
// movers, node constructors, faults, hooks) is code, not state — a restore
// rebuilds the world with the same constructors and parameters, then lays
// this snapshot over it. Seed, shard geometry and the fault fingerprint are
// recorded so Restore can reject a snapshot taken against a different
// configuration instead of silently diverging.
type EngineSnapshot struct {
	Seed        int64
	Round       Round
	Stats       Stats
	ShardCols   int // region-shard plan geometry, 0 on the single-medium path
	ShardRows   int
	FaultDigest uint64 // fingerprint of the registered faults, see faultDigest
	Nodes       []NodeSnapshot
	// Pending CrashAt schedules: CrashRounds is sorted ascending and
	// CrashIDs is aligned with it, each entry sorted by NodeID, so the
	// encoding is canonical regardless of map iteration order.
	CrashRounds []Round
	CrashIDs    [][]NodeID
}

// AppendTo appends the canonical encoding of s to dst.
func (s EngineSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendVarint(dst, s.Seed)
	dst = wire.AppendUvarint(dst, uint64(s.Round))
	dst = wire.AppendUvarint(dst, uint64(s.Stats.Rounds))
	dst = wire.AppendUvarint(dst, uint64(s.Stats.Transmissions))
	dst = wire.AppendUvarint(dst, uint64(s.Stats.MaxMessageSize))
	dst = wire.AppendUvarint(dst, uint64(s.Stats.TotalBytes))
	dst = wire.AppendUvarint(dst, uint64(s.Stats.HaloTransmissions))
	dst = wire.AppendUvarint(dst, uint64(s.ShardCols))
	dst = wire.AppendUvarint(dst, uint64(s.ShardRows))
	dst = wire.AppendUint64(dst, s.FaultDigest)
	dst = wire.AppendUvarint(dst, uint64(len(s.Nodes)))
	for _, n := range s.Nodes {
		dst = n.AppendTo(dst)
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.CrashRounds)))
	for i, r := range s.CrashRounds {
		dst = wire.AppendUvarint(dst, uint64(r))
		ids := s.CrashIDs[i]
		dst = wire.AppendUvarint(dst, uint64(len(ids)))
		for _, id := range ids {
			dst = wire.AppendUvarint(dst, uint64(id))
		}
	}
	return dst
}

// WireSize returns the exact encoded size of s.
func (s EngineSnapshot) WireSize() int {
	n := wire.VarintSize(s.Seed) +
		wire.UvarintSize(uint64(s.Round)) +
		wire.UvarintSize(uint64(s.Stats.Rounds)) +
		wire.UvarintSize(uint64(s.Stats.Transmissions)) +
		wire.UvarintSize(uint64(s.Stats.MaxMessageSize)) +
		wire.UvarintSize(uint64(s.Stats.TotalBytes)) +
		wire.UvarintSize(uint64(s.Stats.HaloTransmissions)) +
		wire.UvarintSize(uint64(s.ShardCols)) +
		wire.UvarintSize(uint64(s.ShardRows)) +
		8 +
		wire.UvarintSize(uint64(len(s.Nodes)))
	for _, node := range s.Nodes {
		n += node.WireSize()
	}
	n += wire.UvarintSize(uint64(len(s.CrashRounds)))
	for i, r := range s.CrashRounds {
		n += wire.UvarintSize(uint64(r))
		ids := s.CrashIDs[i]
		n += wire.UvarintSize(uint64(len(ids)))
		for _, id := range ids {
			n += wire.UvarintSize(uint64(id))
		}
	}
	return n
}

// DecodeEngineSnapshot decodes an EngineSnapshot from b, which must contain
// exactly one encoding.
func DecodeEngineSnapshot(b []byte) (EngineSnapshot, error) {
	d := wire.Dec(b)
	var s EngineSnapshot
	s.Seed = d.Varint()
	s.Round = Round(d.Uvarint())
	s.Stats.Rounds = int(d.Uvarint())
	s.Stats.Transmissions = int(d.Uvarint())
	s.Stats.MaxMessageSize = int(d.Uvarint())
	s.Stats.TotalBytes = int(d.Uvarint())
	s.Stats.HaloTransmissions = int(d.Uvarint())
	s.ShardCols = int(d.Uvarint())
	s.ShardRows = int(d.Uvarint())
	s.FaultDigest = d.Uint64()
	nn := d.Uvarint()
	if nn > uint64(d.Rem()) {
		return EngineSnapshot{}, wire.ErrMalformed
	}
	s.Nodes = make([]NodeSnapshot, 0, nn)
	for i := uint64(0); i < nn; i++ {
		node, err := DecodeNodeSnapshot(&d)
		if err != nil {
			return EngineSnapshot{}, err
		}
		s.Nodes = append(s.Nodes, node)
	}
	nc := d.Uvarint()
	if nc > uint64(d.Rem()) {
		return EngineSnapshot{}, wire.ErrMalformed
	}
	s.CrashRounds = make([]Round, 0, nc)
	s.CrashIDs = make([][]NodeID, 0, nc)
	for i := uint64(0); i < nc; i++ {
		r := Round(d.Uvarint())
		ni := d.Uvarint()
		if ni > uint64(d.Rem()) {
			return EngineSnapshot{}, wire.ErrMalformed
		}
		ids := make([]NodeID, 0, ni)
		for j := uint64(0); j < ni; j++ {
			ids = append(ids, NodeID(d.Uvarint()))
		}
		s.CrashRounds = append(s.CrashRounds, r)
		s.CrashIDs = append(s.CrashIDs, ids)
	}
	if err := d.Finish(); err != nil {
		return EngineSnapshot{}, err
	}
	return s, nil
}

// Snapshot captures the engine's complete mutable state at a round
// boundary: round counter, stats, every node's position/liveness/RNG
// position and Snapshotter blobs, and the pending CrashAt schedule. Taking
// a snapshot never mutates simulation state; two snapshots of the same
// state are byte-identical (map walks are sorted into canonical order).
// It does release the persistent worker runtime (Close) so a checkpoint
// boundary carries no live worker goroutines — the pool is code, not
// state, and is rebuilt lazily on the next parallel Step.
func (e *Engine) Snapshot() EngineSnapshot {
	e.Close()
	s := EngineSnapshot{
		Seed:        e.seed,
		Round:       e.round,
		Stats:       e.stats,
		FaultDigest: e.faultDigest(),
	}
	if e.plane != nil {
		s.ShardCols = e.plane.plan.Cols()
		s.ShardRows = e.plane.plan.Rows()
	}
	s.Nodes = make([]NodeSnapshot, len(e.nodes))
	for i, st := range e.nodes {
		ns := NodeSnapshot{
			ID:    st.id,
			X:     st.pos.X,
			Y:     st.pos.Y,
			Alive: st.alive,
			RNG:   st.rng.State(),
		}
		if sn, ok := st.mover.(Snapshotter); ok {
			ns.Mover = sn.AppendState(nil)
		}
		if sn, ok := st.node.(Snapshotter); ok {
			ns.State = sn.AppendState(nil)
		}
		s.Nodes[i] = ns
	}
	rounds := make([]Round, 0, len(e.crash))
	for r := range e.crash {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	for _, r := range rounds {
		ids := append([]NodeID(nil), e.crash[r]...)
		slices.Sort(ids)
		s.CrashRounds = append(s.CrashRounds, r)
		s.CrashIDs = append(s.CrashIDs, ids)
	}
	return s
}

// Restore lays snapshot s over an engine whose deployment has been rebuilt
// to match the one the snapshot was taken from: same constructors, same
// attach order, same seed, same shard plan, same registered faults. It
// validates all of that (node count and IDs, seed, shard geometry, fault
// fingerprint) and then overwrites the engine's mutable state, after which
// stepping the engine produces exactly the rounds the original would have.
// On error the engine may be partially restored; rebuild it before
// retrying.
func (e *Engine) Restore(s EngineSnapshot) error {
	if s.Seed != e.seed {
		return fmt.Errorf("sim: restore: snapshot seed %d, engine seed %d", s.Seed, e.seed)
	}
	if got := e.faultDigest(); s.FaultDigest != got {
		return fmt.Errorf("sim: restore: snapshot fault digest %#x, engine %#x (rebuild with the same fault set)", s.FaultDigest, got)
	}
	return e.restore(s)
}

// Fork is Restore for counterfactual runs: it lays snapshot s over the
// engine but re-keys every node's random stream under the new seed, so the
// forked run replays the same world state forward under fresh randomness
// (and, because fault fingerprints are not checked, optionally a different
// fault set). Each node's stream is re-keyed as a pure function of
// (newSeed, node, saved position), so forks are themselves deterministic
// and two forks with the same arguments are identical.
func (e *Engine) Fork(s EngineSnapshot, seed int64) error {
	if err := e.restore(s); err != nil {
		return err
	}
	e.seed = seed
	for _, st := range e.nodes {
		st.rng.SetState(det.HashKeys(seed, int64(st.id), int64(st.rng.State())))
	}
	return nil
}

func (e *Engine) restore(s EngineSnapshot) error {
	if len(s.Nodes) != len(e.nodes) {
		return fmt.Errorf("sim: restore: snapshot has %d nodes, engine has %d (rebuild the deployment first)", len(s.Nodes), len(e.nodes))
	}
	cols, rows := 0, 0
	if e.plane != nil {
		cols, rows = e.plane.plan.Cols(), e.plane.plan.Rows()
	}
	if s.ShardCols != cols || s.ShardRows != rows {
		return fmt.Errorf("sim: restore: snapshot shard plan %dx%d, engine %dx%d", s.ShardCols, s.ShardRows, cols, rows)
	}
	for i, ns := range s.Nodes {
		if ns.ID != e.nodes[i].id {
			return fmt.Errorf("sim: restore: node %d carries id %d", i, ns.ID)
		}
	}
	e.round = s.Round
	e.stats = s.Stats
	for i, ns := range s.Nodes {
		st := e.nodes[i]
		st.pos = geo.Point{X: ns.X, Y: ns.Y}
		st.alive = ns.Alive
		st.rng.SetState(ns.RNG)
		e.info[st.id] = NodeInfo{ID: st.id, At: st.pos, Alive: ns.Alive}
		if sn, ok := st.mover.(Snapshotter); ok {
			if err := sn.RestoreState(ns.Mover); err != nil {
				return fmt.Errorf("sim: restore: node %d mover: %w", st.id, err)
			}
		} else if len(ns.Mover) > 0 {
			return fmt.Errorf("sim: restore: node %d has mover state but its mover is not a Snapshotter", st.id)
		}
		if sn, ok := st.node.(Snapshotter); ok {
			if err := sn.RestoreState(ns.State); err != nil {
				return fmt.Errorf("sim: restore: node %d state: %w", st.id, err)
			}
		} else if len(ns.State) > 0 {
			return fmt.Errorf("sim: restore: node %d has node state but its node is not a Snapshotter", st.id)
		}
	}
	e.alive = e.alive[:0]
	for _, st := range e.nodes {
		if st.alive {
			e.alive = append(e.alive, st)
		}
	}
	e.dirty = false
	e.crash = make(map[Round][]NodeID, len(s.CrashRounds))
	for i, r := range s.CrashRounds {
		e.crash[r] = append([]NodeID(nil), s.CrashIDs[i]...)
	}
	return nil
}

// faultDigest fingerprints the registered faults so Restore can detect a
// rebuild with a different adversary configuration. Faults that implement
// the wire AppendTo half contribute their canonical encoding; others
// contribute only their count position. The digest guards against
// configuration drift — it is validation, not state, since faults in this
// stack are pure functions of (config, round).
func (e *Engine) faultDigest() uint64 {
	if len(e.faults) == 0 {
		return 0
	}
	dg := wire.NewDigest()
	buf := wire.GetBuf()
	b := *buf
	for _, f := range e.faults {
		b = b[:0]
		if enc, ok := f.(wireEncoder); ok {
			b = enc.AppendTo(b)
		}
		dg = dg.FoldUint64(uint64(len(b))).FoldBytes(b)
	}
	*buf = b
	wire.PutBuf(buf)
	return uint64(dg)
}
