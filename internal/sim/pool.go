package sim

// workerPool is the engine's persistent worker runtime: a fixed set of
// long-lived helper goroutines that execute contiguous index chunks of a
// fan-out function. It replaces the per-round goroutine spawn (the old
// Shard-per-call path) with a round-barrier handoff — one buffered channel
// send per busy helper and one completion receive per chunk — so a
// steady-state round performs no goroutine creation, no WaitGroup churn
// and no allocation.
//
// Determinism is untouched by construction: the pool only decides *where*
// a chunk runs, never what the chunks are (run computes the same balanced
// chunk boundaries for the same (n, k)) and never how results merge
// (callers merge per-node or per-shard slots in NodeID order afterwards).
// The channel handoffs give the usual happens-before edges: a helper sees
// every write made before its task was sent, and the caller sees every
// helper write once run returns.
//
// A pool is owned by exactly one driving goroutine (the engine's Step
// loop): run is not reentrant and must not be called concurrently. Helpers
// park on their task channel between rounds and hold no engine state, so
// an idle pool costs only the parked goroutines; close releases them.
type workerPool struct {
	helpers []chan poolTask
	done    chan struct{}
}

// poolTask is one chunk handoff: the fan-out function plus the chunk index
// and index range it should cover. The func value and plain ints copy into
// the channel's preallocated buffer, so sending a task allocates nothing.
type poolTask struct {
	fn     func(w, lo, hi int)
	w      int
	lo, hi int
}

// newWorkerPool starts helpers long-lived worker goroutines. The caller's
// own goroutine always runs chunk 0, so a pool with h helpers supports
// fan-outs up to h+1 chunks wide.
func newWorkerPool(helpers int) *workerPool {
	if helpers < 0 {
		helpers = 0
	}
	p := &workerPool{done: make(chan struct{}, helpers)}
	for i := 0; i < helpers; i++ {
		ch := make(chan poolTask, 1)
		p.helpers = append(p.helpers, ch)
		go func() {
			for t := range ch {
				t.fn(t.w, t.lo, t.hi)
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// width returns the widest fan-out the pool supports (helpers + the
// caller's goroutine).
func (p *workerPool) width() int { return len(p.helpers) + 1 }

// run executes fn over [0, n) split into k balanced contiguous chunks:
// chunk w covers [w*n/k, (w+1)*n/k), so chunk sizes differ by at most one
// and every chunk is non-empty when k <= n (the degenerate tiny last chunk
// of the old ceil-division split cannot occur). Chunks 1..k-1 are handed
// to parked helpers; chunk 0 runs on the caller's goroutine; run returns
// once every chunk is done. k is clamped to [1, min(n, width)]; with one
// chunk fn runs inline (fn(0, 0, n), even when n is 0, matching Shard).
func (p *workerPool) run(n, k int, fn func(w, lo, hi int)) {
	if k > n {
		k = n
	}
	if k > p.width() {
		k = p.width()
	}
	if k <= 1 {
		fn(0, 0, n)
		return
	}
	for w := 1; w < k; w++ {
		p.helpers[w-1] <- poolTask{fn: fn, w: w, lo: w * n / k, hi: (w + 1) * n / k}
	}
	fn(0, 0, n/k)
	for w := 1; w < k; w++ {
		<-p.done
	}
}

// close releases the helper goroutines. The pool must be idle (no run in
// flight); after close it is unusable — the engine drops its reference and
// lazily builds a fresh pool if it steps again.
func (p *workerPool) close() {
	for _, ch := range p.helpers {
		close(ch)
	}
	p.helpers = nil
}
