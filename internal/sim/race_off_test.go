//go:build !race

package sim

// raceEnabled reports that this build runs under the race detector, whose
// instrumentation changes allocation counts; the allocation gates skip.
const raceEnabled = false
