package sim

import (
	"testing"

	"vinfra/internal/det"
	"vinfra/internal/geo"
)

// TestNodeRNGMatchesDetStream pins the engine's per-node randomness to the
// det.Stream reference: node id's env draws must be exactly the sequence
// of det.NewStream(seed, id). This is the wiring PR 6's migration off
// math/rand established; if the engine ever re-derives its streams
// differently, every golden file shifts — fail here first, with a message
// that says why.
func TestNodeRNGMatchesDetStream(t *testing.T) {
	const seed = int64(42)
	e := NewEngine(perfectMedium{}, WithSeed(seed))
	var envs []Env
	for i := 0; i < 3; i++ {
		e.Attach(geo.Point{X: float64(i), Y: 0}, nil, func(env Env) Node {
			envs = append(envs, env)
			return &silentNode{}
		})
	}
	for id, env := range envs {
		ref := det.NewStream(seed, int64(id))
		for i := 0; i < 100; i++ {
			got, want := env.Float64(), ref.Float64()
			if got != want {
				t.Fatalf("node %d draw %d: env.Float64() = %v, det.NewStream(%d, %d) = %v",
					id, i, got, seed, id, want)
			}
		}
		// Intn must come from the same stream (next value, not a fork).
		refNext := ref.Intn(1000)
		if got := env.Intn(1000); got != refNext {
			t.Fatalf("node %d: env.Intn(1000) = %d, reference stream = %d", id, got, refNext)
		}
	}
}
