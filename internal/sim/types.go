// Package sim provides the slotted, synchronous round engine on which the
// paper's protocols execute (Section 2 of Chockler, Gilbert, Lynch,
// PODC 2008): a fixed but a-priori-unknown collection of mobile nodes
// proceeds in lockstep rounds; in each round a node either broadcasts or
// listens, and at the end of the round it receives a set of messages plus a
// collision-detector indication.
//
// The engine is deterministic: a given seed reproduces a run bit-for-bit.
// Nodes share no state, so their per-round step functions may run
// concurrently (one goroutine per node) without affecting determinism.
//
// The determinism contract extends across partitioning. The region-sharded
// engine (WithRegionShards) splits the world into shard-owned cell
// rectangles and runs one Medium per shard, but every cross-shard merge —
// collected transmissions, delivered receptions, halo accounting — happens
// in (cell, node) order keyed by NodeID, never in goroutine-completion or
// map-iteration order. A run is therefore byte-identical for every shard
// count, sequential or parallel: shards decide only where work executes,
// never what order its results take. Code in the sharded path must
// preserve this — merge through the NodeID-indexed slices, and derive any
// per-shard randomness from (seed, round, node), never from the shard
// index.
package sim

import (
	"vinfra/internal/geo"
)

// NodeID identifies a node to the engine. The paper's protocols must not
// rely on these identifiers (Section 1.4: nodes "do not require ... unique
// identifiers"); they exist for engine bookkeeping, deterministic iteration
// order, and test assertions only.
type NodeID int

// Round is a slot index of the synchronous channel, starting at 0.
type Round int

// Message is the payload of a broadcast. Protocol messages implement Sized
// so the harness can account for wire size (Theorem 14 measures message
// size in the abstract cost model).
type Message interface{}

// Sized is implemented by messages that report their abstract wire size in
// bytes. Messages that do not implement Sized count as DefaultMessageSize.
type Sized interface {
	WireSize() int
}

// DefaultMessageSize is the accounted size of a message that does not
// implement Sized.
const DefaultMessageSize = 8

// MessageSize returns the accounted wire size of m.
func MessageSize(m Message) int {
	if s, ok := m.(Sized); ok {
		return s.WireSize()
	}
	return DefaultMessageSize
}

// Transmission is one broadcast attempt within a round.
type Transmission struct {
	Sender NodeID
	From   geo.Point
	Msg    Message
}

// Reception is everything a node observes at the end of a round: the set of
// messages it received and its collision detector's indication (the ±
// notification of Section 2).
type Reception struct {
	Round Round
	// Msgs holds the received messages in deterministic (sender ID) order.
	// Protocols must not depend on this order carrying identity.
	Msgs []Message
	// Collision is the collision detector output for this round.
	Collision bool
}

// NodeInfo is the engine's view of one attached node, passed to the Medium
// so it can compute propagation.
type NodeInfo struct {
	ID    NodeID
	At    geo.Point
	Alive bool
}

// Medium computes, for one round, what every listed node receives given the
// set of transmissions. rxs lists the receivers to compute, in NodeID
// order; the returned slice is indexed positionally (entry i answers
// rxs[i]). Entries for crashed nodes are ignored. On the single-medium
// path the engine passes every attached node (alive or crashed); the
// region-sharded engine (WithRegionShards) instead passes each shard
// medium only its own residents, together with every transmission within
// the interference radius of any of them — so a Medium must derive each
// reception only from (round, receiver, the transmissions within the
// interference radius of that receiver) and per-(round, receiver)-keyed
// randomness, never from the receiver set as a whole or from txs beyond
// the radius. radio.Medium satisfies this, which is what makes sharded
// delivery byte-identical to sequential delivery.
//
// Both slice arguments are engine-owned buffers reused across rounds, so a
// Medium must not retain them past the call; symmetrically, the engine
// treats the returned slice as valid only until the next Deliver call, so a
// Medium may reuse it (radio.Medium does). Individual Reception values are
// copied out to nodes — only the non-nil Msgs slices inside them must stay
// untouched once returned, because receivers may retain those.
type Medium interface {
	Deliver(r Round, txs []Transmission, rxs []NodeInfo) []Reception
}

// Node is a protocol endpoint driven by the engine. In each round the
// engine first calls Transmit on every alive node (nil means listen), then
// computes propagation through the Medium, then calls Receive on every
// alive node.
type Node interface {
	// Transmit returns the message to broadcast in round r, or nil to
	// listen.
	Transmit(r Round) Message
	// Receive delivers the round's reception.
	Receive(r Round, rx Reception)
}

// Env gives an attached node access to its engine-provided environment:
// identity, a GPS-style location reading, and a deterministic per-node
// random source.
type Env interface {
	ID() NodeID
	// Location returns the node's current position (the periodic GPS
	// update of Section 2; exact in this simulation).
	Location() geo.Point
	// Intn returns a deterministic uniform int in [0, n). It must only be
	// called from within the node's own Transmit/Receive to preserve
	// determinism.
	Intn(n int) int
	// Float64 returns a deterministic uniform float64 in [0, 1).
	Float64() float64
}

// Mover updates a node's position once per round. Implementations live in
// internal/mobility; Static nodes use nil.
type Mover interface {
	// Move returns the position for the next round given the current one.
	// Displacement per round must not exceed the model's vmax.
	Move(r Round, cur geo.Point, rnd func(n int) int) geo.Point
}
