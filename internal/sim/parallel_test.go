package sim

import (
	"reflect"
	"testing"

	"vinfra/internal/geo"
)

// wanderMover takes a deterministic random step each round, exercising the
// per-node RNG on the sharded mobility phase.
type wanderMover struct{}

func (wanderMover) Move(_ Round, cur geo.Point, rnd func(n int) int) geo.Point {
	return geo.Point{
		X: cur.X + float64(rnd(5)-2)*0.01,
		Y: cur.Y + float64(rnd(5)-2)*0.01,
	}
}

// runEcho drives a mobile echo cluster for some rounds and returns
// everything observable: per-node reception logs and final positions.
func runEcho(nodes, rounds int, opts ...Option) ([][][]Message, []geo.Point) {
	e := NewEngine(perfectMedium{}, append([]Option{WithSeed(42)}, opts...)...)
	echoes := make([]*echoNode, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		e.Attach(geo.Point{X: float64(i)}, wanderMover{}, func(env Env) Node {
			echoes[i] = &echoNode{env: env}
			return echoes[i]
		})
	}
	e.CrashAt(NodeID(nodes/2), Round(rounds/2))
	e.Run(rounds)
	heard := make([][][]Message, nodes)
	pos := make([]geo.Point, nodes)
	for i, n := range echoes {
		heard[i] = n.heard
		pos[i] = e.Position(NodeID(i))
	}
	return heard, pos
}

// TestParallelEngineEqualsSequential is the engine-level half of the
// determinism contract: for the same seed, sharding rounds across any
// number of workers yields exactly the reception logs and trajectories of
// the sequential run.
func TestParallelEngineEqualsSequential(t *testing.T) {
	const nodes, rounds = 33, 12
	wantHeard, wantPos := runEcho(nodes, rounds)
	for _, opt := range []Option{WithParallel(), WithWorkers(1), WithWorkers(3), WithWorkers(64)} {
		for rep := 0; rep < 3; rep++ {
			heard, pos := runEcho(nodes, rounds, opt)
			if !reflect.DeepEqual(heard, wantHeard) {
				t.Fatalf("parallel reception log diverged from sequential")
			}
			if !reflect.DeepEqual(pos, wantPos) {
				t.Fatalf("parallel trajectories diverged from sequential")
			}
		}
	}
}
