package sim

import (
	"reflect"
	"testing"

	"vinfra/internal/geo"
)

// wanderMover takes a deterministic random step each round, exercising the
// per-node RNG on the sharded mobility phase.
type wanderMover struct{}

func (wanderMover) Move(_ Round, cur geo.Point, rnd func(n int) int) geo.Point {
	return geo.Point{
		X: cur.X + float64(rnd(5)-2)*0.01,
		Y: cur.Y + float64(rnd(5)-2)*0.01,
	}
}

// runEcho drives a mobile echo cluster for some rounds and returns
// everything observable: per-node reception logs and final positions.
func runEcho(nodes, rounds int, opts ...Option) ([][][]Message, []geo.Point) {
	e := NewEngine(perfectMedium{}, append([]Option{WithSeed(42)}, opts...)...)
	echoes := make([]*echoNode, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		e.Attach(geo.Point{X: float64(i)}, wanderMover{}, func(env Env) Node {
			echoes[i] = &echoNode{env: env}
			return echoes[i]
		})
	}
	e.CrashAt(NodeID(nodes/2), Round(rounds/2))
	e.Run(rounds)
	heard := make([][][]Message, nodes)
	pos := make([]geo.Point, nodes)
	for i, n := range echoes {
		heard[i] = n.heard
		pos[i] = e.Position(NodeID(i))
	}
	return heard, pos
}

// TestParallelEngineEqualsSequential is the engine-level half of the
// determinism contract: for the same seed, sharding rounds across any
// number of workers yields exactly the reception logs and trajectories of
// the sequential run.
func TestParallelEngineEqualsSequential(t *testing.T) {
	const nodes, rounds = 33, 12
	wantHeard, wantPos := runEcho(nodes, rounds)
	for _, opt := range []Option{WithParallel(), WithWorkers(1), WithWorkers(3), WithWorkers(64)} {
		for rep := 0; rep < 3; rep++ {
			heard, pos := runEcho(nodes, rounds, opt)
			if !reflect.DeepEqual(heard, wantHeard) {
				t.Fatalf("parallel reception log diverged from sequential")
			}
			if !reflect.DeepEqual(pos, wantPos) {
				t.Fatalf("parallel trajectories diverged from sequential")
			}
		}
	}
}

// churnResult is everything observable from a churn run: per-node reception
// logs, send counts, final positions and liveness.
type churnResult struct {
	heard [][][]Message
	sent  []int
	pos   []geo.Point
	alive []bool
}

// runChurnScenario drives a cluster through the full churn surface — mid-run
// Attach, CrashAt in the past / at the current round / in the future, Leave,
// and immediate Crash — under the given engine options.
func runChurnScenario(opts ...Option) churnResult {
	e := NewEngine(perfectMedium{}, append([]Option{WithSeed(99)}, opts...)...)
	var echoes []*echoNode
	attach := func(n int) {
		for i := 0; i < n; i++ {
			pos := geo.Point{X: float64(len(echoes)), Y: 0.5 * float64(len(echoes)%7)}
			e.Attach(pos, wanderMover{}, func(env Env) Node {
				node := &echoNode{env: env}
				echoes = append(echoes, node)
				return node
			})
		}
	}
	attach(24)
	e.Run(4)
	e.CrashAt(2, 1)         // past round: applies immediately
	e.Leave(5)              // immediate departure
	e.CrashAt(9, e.Round()) // current round: fires before its transmissions
	e.CrashAt(11, e.Round()+3)
	e.Run(3)
	attach(8) // mid-run joiners
	e.Crash(0)
	e.CrashAt(27, e.Round()+2)
	e.Run(6)

	res := churnResult{
		heard: make([][][]Message, len(echoes)),
		sent:  make([]int, len(echoes)),
		pos:   make([]geo.Point, len(echoes)),
		alive: make([]bool, len(echoes)),
	}
	for i, n := range echoes {
		res.heard[i] = n.heard
		res.sent[i] = n.sent
		res.pos[i] = e.Position(NodeID(i))
		res.alive[i] = e.Alive(NodeID(i))
	}
	return res
}

// TestParallelChurnEqualsSequential extends the determinism contract to the
// churn surface: mid-run Attach plus CrashAt/Leave/Crash under WithParallel
// must produce receptions, trajectories and liveness identical to the
// sequential run.
func TestParallelChurnEqualsSequential(t *testing.T) {
	want := runChurnScenario()
	for _, opt := range []Option{WithParallel(), WithWorkers(2), WithWorkers(5), WithWorkers(32)} {
		for rep := 0; rep < 3; rep++ {
			got := runChurnScenario(opt)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel churn run diverged from sequential")
			}
		}
	}
}
