package sim

import (
	"reflect"
	"testing"

	"vinfra/internal/geo"
)

// diskMedium is a geometric test medium honoring the sharded-delivery
// contract: each receiver hears exactly the transmissions from other nodes
// within range (in transmission order) plus its own, and flags a collision
// when two or more others are in range — every reception is a pure
// function of (round, receiver, in-range transmissions), with no global
// state, so shard-local delivery with a candidate superset must be
// byte-identical to a global one. (perfectMedium delivers everything to
// everyone and therefore cannot be sharded.)
type diskMedium struct {
	r2 float64
}

func (m diskMedium) Deliver(r Round, txs []Transmission, rxs []NodeInfo) []Reception {
	out := make([]Reception, len(rxs))
	for i, rx := range rxs {
		out[i] = Reception{Round: r}
		if !rx.Alive {
			continue
		}
		var msgs []Message
		others := 0
		for _, tx := range txs {
			if tx.Sender == rx.ID {
				msgs = append([]Message{tx.Msg}, msgs...)
				continue
			}
			if tx.From.Dist2(rx.At) <= m.r2*m.r2 {
				others++
				msgs = append(msgs, tx.Msg)
			}
		}
		out[i].Msgs = msgs
		out[i].Collision = others >= 2
	}
	return out
}

// roamMover takes larger deterministic random steps than wanderMover so
// nodes migrate across shard rectangles within a short run.
type roamMover struct{}

func (roamMover) Move(_ Round, cur geo.Point, rnd func(n int) int) geo.Point {
	return geo.Point{
		X: cur.X + float64(rnd(7)-3)*1.5,
		Y: cur.Y + float64(rnd(7)-3)*1.5,
	}
}

// sparseEcho transmits only on a per-node stride (so rounds mix senders,
// listeners and contention) and records full receptions including the
// collision flag.
type sparseEcho struct {
	env   Env
	burst int
	heard []Reception
}

func (n *sparseEcho) Transmit(r Round) Message {
	if (int(r)+int(n.env.ID()))%n.burst != 0 {
		return nil
	}
	return [2]int{int(n.env.ID()), int(r)}
}

func (n *sparseEcho) Receive(_ Round, rx Reception) {
	n.heard = append(n.heard, rx)
}

// runShardedScenario drives a churned, mobile cluster over a diskMedium
// world ~5 cells wide, so every shard count in the tests produces real
// boundary bands, halo traffic and cross-shard migration. It returns every
// observable: reception logs (with collision flags), final positions,
// liveness, and engine stats.
func runShardedScenario(rounds int, opts ...Option) ([][]Reception, []geo.Point, []bool, Stats) {
	const r2 = 10.0
	e := NewEngine(diskMedium{r2: r2}, append([]Option{WithSeed(7)}, opts...)...)
	var nodes []*sparseEcho
	attach := func(n int) {
		for i := 0; i < n; i++ {
			k := len(nodes)
			pos := geo.Point{X: float64(k%8) * 6.5, Y: float64(k/8) * 6.5}
			e.Attach(pos, roamMover{}, func(env Env) Node {
				node := &sparseEcho{env: env, burst: 2 + k%3}
				nodes = append(nodes, node)
				return node
			})
		}
	}
	attach(40)
	e.Run(rounds / 3)
	e.CrashAt(3, 1)          // past round: applies immediately
	e.Leave(7)               // immediate departure
	e.CrashAt(12, e.Round()) // fires before this round's transmissions
	e.CrashAt(21, e.Round()+2)
	e.Run(rounds / 3)
	attach(10) // mid-run joiners land in whatever shard owns their cell
	e.Crash(0)
	e.Run(rounds - 2*(rounds/3))

	heard := make([][]Reception, len(nodes))
	pos := make([]geo.Point, len(nodes))
	alive := make([]bool, len(nodes))
	for i, n := range nodes {
		heard[i] = n.heard
		pos[i] = e.Position(NodeID(i))
		alive[i] = e.Alive(NodeID(i))
	}
	return heard, pos, alive, e.Stats()
}

// TestRegionShardedEqualsSequential is the engine-level half of the
// sharded determinism contract: for every shard grid, with and without
// parallel shard execution, the sharded engine's receptions, trajectories,
// liveness and stats are byte-identical to the plain single-medium run —
// under churn (mid-run attach, crashes, leaves) and cross-shard mobility.
func TestRegionShardedEqualsSequential(t *testing.T) {
	const rounds = 18
	wantHeard, wantPos, wantAlive, wantStats := runShardedScenario(rounds)
	grids := []struct{ cols, rows int }{{1, 1}, {2, 1}, {2, 2}, {3, 3}, {4, 2}, {5, 1}}
	for _, g := range grids {
		for _, par := range []bool{false, true} {
			opts := []Option{WithRegionShards(g.cols, g.rows, 10, func() Medium {
				return diskMedium{r2: 10}
			})}
			if par {
				opts = append(opts, WithParallel())
			}
			heard, pos, alive, stats := runShardedScenario(rounds, opts...)
			label := "sequential"
			if par {
				label = "parallel"
			}
			if !reflect.DeepEqual(heard, wantHeard) {
				t.Fatalf("%dx%d %s: sharded reception log diverged from sequential", g.cols, g.rows, label)
			}
			if !reflect.DeepEqual(pos, wantPos) {
				t.Fatalf("%dx%d %s: sharded trajectories diverged", g.cols, g.rows, label)
			}
			if !reflect.DeepEqual(alive, wantAlive) {
				t.Fatalf("%dx%d %s: sharded liveness diverged", g.cols, g.rows, label)
			}
			// Everything except the halo accounting must match the
			// single-medium stats exactly.
			gotCore, wantCore := stats, wantStats
			gotCore.HaloTransmissions, wantCore.HaloTransmissions = 0, 0
			if gotCore != wantCore {
				t.Fatalf("%dx%d %s: sharded stats %+v diverged from %+v", g.cols, g.rows, label, stats, wantStats)
			}
			if g.cols*g.rows > 1 && stats.HaloTransmissions == 0 {
				t.Fatalf("%dx%d %s: no halo transmissions — the scenario exercised no boundary band", g.cols, g.rows, label)
			}
			if g.cols*g.rows == 1 && stats.HaloTransmissions != 0 {
				t.Fatalf("1x1 %s: unexpected halo transmissions %d", label, stats.HaloTransmissions)
			}
		}
	}
}

// TestRegionShardsAccessors pins the option plumbing: shard count is
// visible, the factory is called once per shard, and invalid setups panic.
func TestRegionShardsAccessors(t *testing.T) {
	made := 0
	e := NewEngine(nil, WithRegionShards(3, 2, 10, func() Medium {
		made++
		return diskMedium{r2: 10}
	}))
	if e.RegionShards() != 6 {
		t.Errorf("RegionShards() = %d, want 6", e.RegionShards())
	}
	if made != 6 {
		t.Errorf("factory called %d times, want 6", made)
	}
	if NewEngine(perfectMedium{}).RegionShards() != 0 {
		t.Error("single-medium engine reports region shards")
	}
	for name, opt := range map[string]Option{
		"nil factory":    WithRegionShards(2, 2, 10, nil),
		"zero cell size": WithRegionShards(2, 2, 0, func() Medium { return diskMedium{} }),
		"zero cols":      WithRegionShards(0, 2, 10, func() Medium { return diskMedium{} }),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: WithRegionShards did not panic", name)
				}
			}()
			NewEngine(nil, opt)
		}()
	}
}

// TestShardedEmptyWorld guards the degenerate paths: an engine with no
// nodes (and one whose population fully dies) must still step, fire hooks
// with full-length reception slices, and count rounds.
func TestShardedEmptyWorld(t *testing.T) {
	e := NewEngine(nil, WithRegionShards(2, 2, 10, func() Medium { return diskMedium{r2: 10} }))
	hooks := 0
	e.OnRound(func(r Round, txs []Transmission, rxs []Reception) {
		hooks++
		if len(txs) != 0 || len(rxs) != e.NumNodes() {
			t.Errorf("round %d: %d txs, %d rxs for %d nodes", r, len(txs), len(rxs), e.NumNodes())
		}
	})
	e.Run(3)
	var n *silentNode
	e.Attach(geo.Point{X: 1, Y: 1}, nil, func(env Env) Node { n = &silentNode{}; return n })
	e.Run(2)
	e.Crash(0)
	e.Run(2)
	if hooks != 7 {
		t.Errorf("hooks fired %d times, want 7", hooks)
	}
	if len(n.heard) != 2 {
		t.Errorf("node received %d rounds while alive, want 2", len(n.heard))
	}
	if e.Stats().Rounds != 7 {
		t.Errorf("Stats().Rounds = %d, want 7", e.Stats().Rounds)
	}
}
