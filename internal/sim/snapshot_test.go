package sim

import (
	"bytes"
	"reflect"
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/wire"
)

// counterNode exercises both halves of the engine snapshot: it carries
// Snapshotter state (a running count of messages heard) and consumes the
// node's deterministic RNG stream every round, so a restore that misplaces
// either diverges immediately.
type counterNode struct {
	env   Env
	count int
}

func (n *counterNode) Transmit(r Round) Message {
	if n.env.Intn(3) == 0 {
		return nil
	}
	return n.env.ID()
}

func (n *counterNode) Receive(_ Round, rx Reception) {
	n.count += len(rx.Msgs)
}

func (n *counterNode) AppendState(dst []byte) []byte {
	return wire.AppendUvarint(dst, uint64(n.count))
}

func (n *counterNode) RestoreState(data []byte) error {
	d := wire.Dec(data)
	n.count = int(d.Uvarint())
	return d.Finish()
}

// phaseMover is a stateful mover: Snapshotter, so its phase survives.
type phaseMover struct {
	phase int
}

func (m *phaseMover) Move(_ Round, cur geo.Point, _ func(int) int) geo.Point {
	m.phase++
	return geo.Point{X: cur.X + float64(m.phase%3), Y: cur.Y}
}

func (m *phaseMover) AppendState(dst []byte) []byte {
	return wire.AppendUvarint(dst, uint64(m.phase))
}

func (m *phaseMover) RestoreState(data []byte) error {
	d := wire.Dec(data)
	m.phase = int(d.Uvarint())
	return d.Finish()
}

func snapshotEngine(n int, opts ...Option) (*Engine, []*counterNode) {
	e := NewEngine(perfectMedium{}, append([]Option{WithSeed(42)}, opts...)...)
	nodes := make([]*counterNode, n)
	for i := 0; i < n; i++ {
		i := i
		e.Attach(geo.Point{X: float64(i)}, &phaseMover{}, func(env Env) Node {
			nodes[i] = &counterNode{env: env}
			return nodes[i]
		})
	}
	return e, nodes
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e, _ := snapshotEngine(5)
	e.CrashAt(3, 9)
	e.CrashAt(1, 9)
	e.CrashAt(2, 12)
	e.Run(4)

	s := e.Snapshot()
	b := s.AppendTo(nil)
	if len(b) != s.WireSize() {
		t.Fatalf("WireSize = %d, encoded %d bytes", s.WireSize(), len(b))
	}
	got, err := DecodeEngineSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("decode(encode(s)) != s:\ngot:  %+v\nwant: %+v", got, s)
	}
	if !bytes.Equal(got.AppendTo(nil), b) {
		t.Fatal("re-encoding the decoded snapshot changes bytes")
	}
	// Snapshots are canonical: taking a second one is byte-identical.
	if !bytes.Equal(e.Snapshot().AppendTo(nil), b) {
		t.Fatal("two snapshots of the same state differ")
	}
}

func TestEngineRestoreEqualsUninterrupted(t *testing.T) {
	straight, _ := snapshotEngine(6)
	straight.CrashAt(4, 7)
	straight.Run(12)
	want := straight.Snapshot().AppendTo(nil)

	a, _ := snapshotEngine(6)
	a.CrashAt(4, 7)
	a.Run(5) // mid-schedule: the CrashAt for round 7 is still pending
	snap := a.Snapshot()

	b, _ := snapshotEngine(6)
	b.CrashAt(4, 7)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	b.Run(7)
	if got := b.Snapshot().AppendTo(nil); !bytes.Equal(got, want) {
		t.Fatal("restored engine diverges from the uninterrupted run")
	}
}

func TestEngineRestoreValidation(t *testing.T) {
	e, _ := snapshotEngine(4)
	e.Run(3)
	snap := e.Snapshot()

	smaller, _ := snapshotEngine(3)
	if err := smaller.Restore(snap); err == nil {
		t.Fatal("restore onto an engine with fewer nodes succeeded")
	}

	otherSeed := NewEngine(perfectMedium{})
	for i := 0; i < 4; i++ {
		otherSeed.Attach(geo.Point{X: float64(i)}, &phaseMover{}, func(env Env) Node {
			return &counterNode{env: env}
		})
	}
	if err := otherSeed.Restore(snap); err == nil {
		t.Fatal("restore onto an engine with a different seed succeeded")
	}

	// A node blob aimed at a non-Snapshotter means the deployment was
	// rebuilt with different constructors: an error, not silent data loss.
	plain := NewEngine(perfectMedium{}, WithSeed(42))
	for i := 0; i < 4; i++ {
		plain.Attach(geo.Point{X: float64(i)}, nil, func(Env) Node {
			return &silentNode{}
		})
	}
	if err := plain.Restore(snap); err == nil {
		t.Fatal("restore of node state onto a non-Snapshotter succeeded")
	}
}

func TestEngineForkDeterministic(t *testing.T) {
	src, _ := snapshotEngine(5)
	src.Run(6)
	snap := src.Snapshot()

	fork := func(seed int64) []byte {
		e, _ := snapshotEngine(5)
		if err := e.Fork(snap, seed); err != nil {
			t.Fatal(err)
		}
		e.Run(6)
		return e.Snapshot().AppendTo(nil)
	}
	a, b, c := fork(99), fork(99), fork(100)
	if !bytes.Equal(a, b) {
		t.Fatal("two forks with the same seed diverge")
	}
	if bytes.Equal(a, c) {
		t.Fatal("forks with different seeds are identical")
	}
}

func FuzzDecodeEngineSnapshot(f *testing.F) {
	e, _ := snapshotEngine(3)
	e.CrashAt(1, 5)
	e.Run(2)
	f.Add(e.Snapshot().AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeEngineSnapshot(b)
		if err != nil {
			return
		}
		// Valid decodes are canonical fixed points.
		out := s.AppendTo(nil)
		if len(out) != s.WireSize() {
			t.Fatalf("WireSize = %d, encoded %d bytes", s.WireSize(), len(out))
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("decode/re-encode not canonical:\nin:  %x\nout: %x", b, out)
		}
	})
}
