package sim

import (
	"sort"
	"sync"
	"testing"
)

// chunksOf records the (lo, hi) ranges a fan-out primitive produced,
// sorted by lo (the chunks run concurrently, so arrival order is noise).
func chunksOf(run func(record func(lo, hi int))) [][2]int {
	var mu sync.Mutex
	var chunks [][2]int
	run(func(lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	})
	sort.Slice(chunks, func(i, j int) bool { return chunks[i][0] < chunks[j][0] })
	return chunks
}

// checkChunks asserts the chunk invariants: the sorted chunks tile [0, n)
// contiguously with no gaps or overlaps, there are exactly want of them,
// and their sizes are balanced (differ by at most one, none empty when
// n > 0). The old ceil-division split violated balance for n slightly
// above a multiple of workers — Shard(9, 8) produced chunks 2,2,2,2,1,
// leaving three workers idle and a degenerate last chunk.
func checkChunks(t *testing.T, chunks [][2]int, n, want int) {
	t.Helper()
	if len(chunks) != want {
		t.Fatalf("got %d chunks %v, want %d", len(chunks), chunks, want)
	}
	next, minSz, maxSz := 0, n+1, -1
	for _, c := range chunks {
		if c[0] != next {
			t.Fatalf("chunks %v do not tile [0,%d): gap or overlap at %d", chunks, n, c[0])
		}
		sz := c[1] - c[0]
		if n > 0 && want > 1 && sz == 0 {
			t.Fatalf("chunks %v contain an empty chunk", chunks)
		}
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
		next = c[1]
	}
	if next != n {
		t.Fatalf("chunks %v cover [0,%d), want [0,%d)", chunks, next, n)
	}
	if want > 1 && maxSz-minSz > 1 {
		t.Fatalf("chunks %v unbalanced: sizes range %d..%d", chunks, minSz, maxSz)
	}
}

// TestShardChunking pins the edge widths of the spawn-per-call primitive:
// n=0 (one empty call), n<workers (one chunk per index), n=workers+1 (the
// regression case: every worker used, sizes 1 or 2), and a sweep.
func TestShardChunking(t *testing.T) {
	shardChunks := func(n, w int) [][2]int {
		return chunksOf(func(rec func(lo, hi int)) { Shard(n, w, rec) })
	}
	checkChunks(t, shardChunks(0, 4), 0, 1) // fn still called once, on [0,0)
	checkChunks(t, shardChunks(3, 8), 3, 3) // n < workers: n single-index chunks
	checkChunks(t, shardChunks(9, 8), 9, 8) // n = workers+1: all 8 used, sizes 1..2
	checkChunks(t, shardChunks(8, 8), 8, 8) // n = workers
	checkChunks(t, shardChunks(17, 1), 17, 1)
	for _, n := range []int{1, 2, 5, 7, 16, 100, 1001} {
		for _, w := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
			want := w
			if want > n {
				want = n
			}
			if want < 1 {
				want = 1
			}
			checkChunks(t, shardChunks(n, w), n, want)
		}
	}
}

// TestWorkerPoolRunChunks pins the persistent pool's chunking to the same
// invariants, plus its clamps (k capped by n and by the pool width) and
// reuse across many runs of varying shape on the same parked helpers.
func TestWorkerPoolRunChunks(t *testing.T) {
	p := newWorkerPool(7) // width 8
	defer p.close()
	poolChunks := func(n, k int) [][2]int {
		return chunksOf(func(rec func(lo, hi int)) {
			p.run(n, k, func(_, lo, hi int) { rec(lo, hi) })
		})
	}
	checkChunks(t, poolChunks(0, 4), 0, 1)
	checkChunks(t, poolChunks(9, 8), 9, 8)
	checkChunks(t, poolChunks(3, 8), 3, 3)
	checkChunks(t, poolChunks(100, 16), 100, 8) // clamped to pool width
	for rep := 0; rep < 5; rep++ {              // helpers are reused, not respawned
		for _, n := range []int{1, 7, 64, 513} {
			for _, k := range []int{1, 2, 5, 8} {
				want := k
				if want > n {
					want = n
				}
				checkChunks(t, poolChunks(n, k), n, want)
			}
		}
	}
	// The chunk index argument matches the chunk's balanced range.
	var mu sync.Mutex
	got := map[int][2]int{}
	p.run(22, 5, func(w, lo, hi int) {
		mu.Lock()
		got[w] = [2]int{lo, hi}
		mu.Unlock()
	})
	for w := 0; w < 5; w++ {
		want := [2]int{w * 22 / 5, (w + 1) * 22 / 5}
		if got[w] != want {
			t.Fatalf("chunk %d ran [%d,%d), want [%d,%d)", w, got[w][0], got[w][1], want[0], want[1])
		}
	}
}
