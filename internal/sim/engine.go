package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"vinfra/internal/det"
	"vinfra/internal/geo"
)

// Engine drives a set of nodes through synchronous slotted rounds against a
// Medium. The zero value is not usable; construct with NewEngine.
type Engine struct {
	medium   Medium
	seed     int64
	parallel bool
	workers  int

	round  Round
	nodes  []*nodeState // indexed by NodeID
	alive  []*nodeState // alive nodes in NodeID order; see compactAlive
	dirty  bool         // a node died since alive was last compacted
	crash  map[Round][]NodeID
	hooks  []RoundHook
	faults []Fault
	stats  Stats

	// Reusable per-round buffers: the steady-state round loop allocates
	// nothing of its own.
	info    []NodeInfo // medium view, indexed by NodeID, kept in sync
	txs     []Transmission
	txSlots []Message // parallel Transmit scratch, indexed by NodeID

	// Cached fan-out closures and their per-round inputs. The worker
	// runtime hands the callback to helper goroutines, which forces it
	// onto the heap, so building the closures fresh every round would
	// allocate; instead they are built once and read the current round
	// (and receptions) from these fields.
	curRound Round
	curRxs   []Reception
	mobFn    func(w, lo, hi int)
	txFn     func(w, lo, hi int)
	rxFn     func(w, lo, hi int)

	// pool is the persistent worker runtime behind every parallel
	// fan-out: started lazily on the first parallel round, torn down by
	// Close and Snapshot (and rebuilt lazily if the engine steps again).
	// spawnFanout forces the legacy goroutine-per-round path instead —
	// the benchmark baseline the pool is measured against.
	pool        *workerPool
	spawnFanout bool

	// partTime accumulates wall time spent in the sharded
	// mobility+partition pass. It is a measurement, not state: never part
	// of Stats or a snapshot, so determinism contracts are unaffected.
	partTime time.Duration

	// plane, when non-nil, replaces the single-medium delivery path with
	// the region-sharded one (WithRegionShards): per-shard mediums over
	// shard-owned cell rectangles with a boundary-band halo exchange.
	plane *shardPlane
}

// RoundHook observes a completed round: the transmissions that occurred and
// the receptions delivered (indexed by NodeID). Hooks run sequentially
// after delivery; they may read the values but must not mutate them, and
// the slices are only valid for the duration of the call — the engine and
// medium reuse them the next round, so copy anything worth keeping.
type RoundHook func(r Round, txs []Transmission, rxs []Reception)

// Control is the narrow engine surface handed to a Fault: enough to observe
// the deployment and to crash, relocate or schedule failures, but not to
// drive rounds. NodeIDs are dense in [0, NumNodes()).
type Control interface {
	NumNodes() int
	Alive(id NodeID) bool
	AliveCount() int
	Position(id NodeID) geo.Point
	Crash(id NodeID)
	CrashAt(id NodeID, r Round)
	Leave(id NodeID)
	SetPosition(id NodeID, p geo.Point)
}

// Fault is an engine-level adversary: the engine consults every registered
// fault at the start of each round, before scheduled crashes and mobility,
// so a fault's crashes and relocations take effect in the round they strike.
// Faults run sequentially in registration order on the engine's goroutine
// (never concurrently), so a deterministic Strike keeps the whole run
// deterministic; implementations in internal/faults derive all randomness
// from (seed, round, node) hashes. A Strike may also attach new nodes
// through an Engine reference it closed over — equivalent to attaching
// between rounds, the mid-run join path the churn experiments already use.
type Fault interface {
	Strike(r Round, ctl Control)
}

// Stats accumulates engine-level measurements used by the experiment
// harness (the abstract cost model of Theorem 14).
type Stats struct {
	Rounds         int // rounds executed
	Transmissions  int // total broadcast attempts
	MaxMessageSize int // largest accounted message size seen
	TotalBytes     int // sum of accounted message sizes
	// HaloTransmissions counts boundary-band transmission copies handed to
	// neighboring shards by the region-sharded engine (zero on the
	// single-medium path) — the cross-shard traffic a distributed runner
	// would put on the wire.
	HaloTransmissions int
}

type nodeState struct {
	id    NodeID
	node  Node
	pos   geo.Point
	mover Mover
	rng   *det.Stream
	alive bool
	env   *nodeEnv
}

type nodeEnv struct {
	st *nodeState
}

func (e *nodeEnv) ID() NodeID          { return e.st.id }
func (e *nodeEnv) Location() geo.Point { return e.st.pos }
func (e *nodeEnv) Intn(n int) int      { return e.st.rng.Intn(n) }
func (e *nodeEnv) Float64() float64    { return e.st.rng.Float64() }

var _ Control = (*Engine)(nil)

// Option configures an Engine.
type Option func(*Engine)

// WithSeed sets the master seed from which per-node random sources are
// derived. The default seed is 1.
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithParallel shards each round's mobility, Transmit and Receive fan-out
// across a bounded worker pool (one shard per worker, contiguous NodeID
// ranges). Nodes share no state and per-node randomness is keyed to the
// node, so output is deterministic and identical to a sequential run;
// transmissions are merged in NodeID order after the fan-out.
func WithParallel() Option {
	return func(e *Engine) { e.parallel = true }
}

// WithWorkers sets the worker-pool size used by WithParallel (and implies
// it). n <= 0 means runtime.GOMAXPROCS(0), the default.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		e.parallel = true
		e.workers = n
	}
}

// NewEngine returns an engine that propagates messages through medium.
func NewEngine(medium Medium, opts ...Option) *Engine {
	e := &Engine{
		medium: medium,
		seed:   1,
		crash:  make(map[Round][]NodeID),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Attach adds a node at position pos with the given mobility model (nil for
// static) and returns its ID. The build function receives the node's
// environment handle; it is invoked before Attach returns. Nodes may be
// attached mid-run (the join scenario of Section 4.3).
func (e *Engine) Attach(pos geo.Point, mover Mover, build func(Env) Node) NodeID {
	id := NodeID(len(e.nodes))
	st := &nodeState{
		id:    id,
		pos:   pos,
		mover: mover,
		rng:   det.NewStream(e.seed, int64(id)),
		alive: true,
	}
	st.env = &nodeEnv{st: st}
	st.node = build(st.env)
	if st.node == nil {
		panic("sim: Attach build function returned nil Node")
	}
	e.nodes = append(e.nodes, st)
	e.alive = append(e.alive, st)
	e.info = append(e.info, NodeInfo{ID: id, At: pos, Alive: true})
	return id
}

// Crash fails node id immediately: it stops transmitting and receiving from
// the next round onward. Crashing an already-crashed node is a no-op.
func (e *Engine) Crash(id NodeID) {
	st := e.nodes[id]
	if !st.alive {
		return
	}
	st.alive = false
	e.info[id].Alive = false
	e.dirty = true
}

// CrashAt schedules node id to crash at the start of round r. A round at or
// before the engine's current round applies the crash immediately — for
// r equal to the current round that is exactly what the scheduled path
// would do (crashes apply before the round's mobility and transmissions),
// and a round already in the past must not be dropped silently, which is
// what the schedule map alone used to do with late crash requests from
// churn generators.
func (e *Engine) CrashAt(id NodeID, r Round) {
	if r <= e.round {
		e.Crash(id)
		return
	}
	e.crash[r] = append(e.crash[r], id)
}

// Leave removes a node from the emulation (a mobile device departing a
// region). Engine semantics are identical to Crash; the distinct name keeps
// call sites honest about intent.
func (e *Engine) Leave(id NodeID) {
	e.Crash(id)
}

// Alive reports whether node id has not crashed or left.
func (e *Engine) Alive(id NodeID) bool {
	return e.nodes[id].alive
}

// AliveCount returns the number of alive nodes.
func (e *Engine) AliveCount() int {
	e.compactAlive()
	return len(e.alive)
}

// compactAlive drops dead nodes from the alive list (preserving NodeID
// order) once any have died. Every per-round loop walks this list, so a
// long churn run's cost tracks the population that is actually alive
// instead of every node ever attached.
func (e *Engine) compactAlive() {
	if !e.dirty {
		return
	}
	live := e.alive[:0]
	for _, st := range e.alive {
		if st.alive {
			live = append(live, st)
		}
	}
	for i := len(live); i < len(e.alive); i++ {
		e.alive[i] = nil // release the dead node for GC
	}
	e.alive = live
	e.dirty = false
}

// NumNodes returns the total number of nodes ever attached.
func (e *Engine) NumNodes() int {
	return len(e.nodes)
}

// Position returns the current position of node id.
func (e *Engine) Position(id NodeID) geo.Point {
	return e.nodes[id].pos
}

// SetPosition teleports node id (used by tests and by churn generators that
// respawn nodes in new regions).
func (e *Engine) SetPosition(id NodeID, p geo.Point) {
	e.nodes[id].pos = p
	e.info[id].At = p
}

// Round returns the next round to execute.
func (e *Engine) Round() Round {
	return e.round
}

// OnRound registers a hook observing every completed round.
func (e *Engine) OnRound(h RoundHook) {
	e.hooks = append(e.hooks, h)
}

// AddFault registers an engine-level adversary consulted at the start of
// every round, in registration order. See Fault.
func (e *Engine) AddFault(f Fault) {
	if f == nil {
		panic("sim: AddFault called with nil Fault")
	}
	e.faults = append(e.faults, f)
}

// Stats returns a copy of the accumulated engine statistics.
func (e *Engine) Stats() Stats {
	return e.stats
}

// Run executes n rounds.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// Step executes a single round: scheduled crashes, mobility, transmission
// fan-out, propagation through the medium, and reception fan-out.
//
// The steady-state round loop allocates nothing: the NodeInfo view, the
// transmission list and the parallel Transmit slots are engine-owned
// buffers reused across rounds, and every per-round walk (mobility,
// Transmit, Receive) covers only the alive list, so dead nodes cost
// nothing after the round they die in. The NodeInfo slice handed to the
// medium still lists every node ever attached (the Medium contract), with
// dead entries frozen at their final position.
func (e *Engine) Step() {
	r := e.round

	// Faults strike first, before the round counter advances: anything
	// they crash (or CrashAt for r, applied immediately) is dead before
	// this round's mobility and transmissions, anything they attach
	// participates from this round on, and CrashAt(id, r+1) schedules for
	// the next round rather than collapsing into an immediate crash.
	for _, f := range e.faults {
		f.Strike(r, e)
	}

	e.round++
	e.curRound = r

	for _, id := range e.crash[r] {
		e.Crash(id)
	}
	delete(e.crash, r)
	e.compactAlive()

	// Mobility: move every alive node. Per-node RNG call order within a
	// round is fixed (Move, then Transmit), so this is deterministic
	// whether the shards run sequentially or in parallel.
	if e.mobFn == nil {
		e.mobFn = func(_, lo, hi int) {
			for _, st := range e.alive[lo:hi] {
				if st.mover != nil {
					st.pos = st.mover.Move(e.curRound, st.pos, st.rng.Intn)
					e.info[st.id].At = st.pos
				}
			}
		}
	}
	e.shard(e.mobFn)

	var txs []Transmission
	var rxs []Reception
	if e.plane != nil {
		txs, rxs = e.plane.round(e, r)
	} else {
		txs = e.collectTransmissions(r)
		rxs = e.medium.Deliver(r, txs, e.info)
		if len(rxs) != len(e.nodes) {
			panic(fmt.Sprintf("sim: medium returned %d receptions for %d nodes", len(rxs), len(e.nodes)))
		}
		e.deliver(r, rxs)
	}

	e.stats.Rounds++
	e.stats.Transmissions += len(txs)
	if e.plane != nil {
		e.stats.HaloTransmissions += e.plane.halo
	}
	for _, tx := range txs {
		sz := MessageSize(tx.Msg)
		e.stats.TotalBytes += sz
		if sz > e.stats.MaxMessageSize {
			e.stats.MaxMessageSize = sz
		}
	}
	for _, h := range e.hooks {
		h(r, txs, rxs)
	}
}

// collectTransmissions fans Transmit out across the worker pool (writing
// into per-node slots) and then merges the non-nil results in NodeID order,
// so the transmission list is identical to a sequential collection. The
// returned slice is engine-owned and valid until the next round.
func (e *Engine) collectTransmissions(r Round) []Transmission {
	e.txs = e.txs[:0]
	if e.parallel {
		if len(e.txSlots) < len(e.nodes) {
			e.txSlots = make([]Message, len(e.nodes))
		}
		if e.txFn == nil {
			e.txFn = func(_, lo, hi int) {
				for _, st := range e.alive[lo:hi] {
					e.txSlots[st.id] = st.node.Transmit(e.curRound)
				}
			}
		}
		e.shard(e.txFn)
		for _, st := range e.alive {
			if m := e.txSlots[st.id]; m != nil {
				e.txs = append(e.txs, Transmission{Sender: st.id, From: st.pos, Msg: m})
				e.txSlots[st.id] = nil // drop the reference for GC
			}
		}
		return e.txs
	}
	for _, st := range e.alive {
		if m := st.node.Transmit(r); m != nil {
			e.txs = append(e.txs, Transmission{Sender: st.id, From: st.pos, Msg: m})
		}
	}
	return e.txs
}

func (e *Engine) deliver(r Round, rxs []Reception) {
	e.curRxs = rxs
	if e.rxFn == nil {
		e.rxFn = func(_, lo, hi int) {
			for _, st := range e.alive[lo:hi] {
				st.node.Receive(e.curRound, e.curRxs[st.id])
			}
		}
	}
	e.shard(e.rxFn)
	e.curRxs = nil
}

// shard runs fn over contiguous ranges covering the alive list: on one
// range sequentially by default, or fanned across the persistent worker
// runtime under WithParallel. Callers must only touch per-node state (or
// per-node slots) inside fn.
func (e *Engine) shard(fn func(w, lo, hi int)) {
	w := 1
	if e.parallel {
		w = e.fanout()
	}
	e.runChunks(len(e.alive), w, fn)
}

// fanout returns the resolved parallel width for node-ranged fan-outs: the
// explicit WithWorkers bound, or GOMAXPROCS.
func (e *Engine) fanout() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// poolWidth returns the widest fan-out any engine loop can request — the
// node-ranged width, or one chunk per region shard when the sharded plane
// defaults to shard-per-goroutine — and therefore the persistent pool's
// size. Sized once, when the pool is lazily created.
func (e *Engine) poolWidth() int {
	w := e.fanout()
	if e.plane != nil && e.workers <= 0 {
		if s := e.plane.plan.Shards(); s > w {
			w = s
		}
	}
	return w
}

// runChunks runs fn over [0, n) in at most k balanced contiguous chunks
// (chunk w covers [w*n/k, (w+1)*n/k)): inline when k <= 1, otherwise on
// the persistent worker runtime, creating it on first use. With
// spawnFanout set it spawns a goroutine per chunk instead — the legacy
// per-round fan-out kept as the benchmark baseline; the chunk boundaries
// (and therefore the output) are identical on every path.
func (e *Engine) runChunks(n, k int, fn func(w, lo, hi int)) {
	if k > n {
		k = n
	}
	if k <= 1 {
		fn(0, 0, n)
		return
	}
	if e.spawnFanout {
		var wg sync.WaitGroup
		for w := 1; w < k; w++ {
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				fn(w, lo, hi)
			}(w, w*n/k, (w+1)*n/k)
		}
		fn(0, 0, n/k)
		wg.Wait()
		return
	}
	if e.pool == nil {
		e.pool = newWorkerPool(e.poolWidth() - 1)
	}
	e.pool.run(n, k, fn)
}

// Close releases the persistent worker runtime (helper goroutines parked
// between rounds). The engine stays fully usable — the next parallel Step
// lazily builds a fresh pool — so Close is safe to call whenever an engine
// goes idle, and is idempotent. It must not run concurrently with Step.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// PartitionTime returns the cumulative wall time the region-sharded plane
// has spent in its partition pass (zero on the single-medium path). It is
// a measurement for perf reporting — deliberately excluded from Stats and
// snapshots, so determinism comparisons never see it.
func (e *Engine) PartitionTime() time.Duration {
	return e.partTime
}

// Shard splits [0, n) into at most workers contiguous chunks and runs fn on
// each, concurrently when workers > 1, returning once every chunk is done.
// Chunks are balanced: chunk i covers [i*n/w, (i+1)*n/w), so sizes differ
// by at most one and every chunk is non-empty — the old ceil-division
// split could strand most workers and leave a degenerate last chunk (n=9,
// workers=8 produced five chunks of 2,2,2,2,1).
//
// This is the spawn-per-call primitive used by the radio medium's parallel
// delivery (which may run nested inside an engine worker and so cannot
// share the engine's pool); the engine's own fan-outs run on the
// persistent worker runtime instead. fn must only touch state owned by (or
// slotted per) the indices it is given.
func Shard(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(w*n/workers, (w+1)*n/workers)
	}
	fn(0, n/workers)
	wg.Wait()
}
