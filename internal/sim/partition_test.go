package sim

import (
	"reflect"
	"testing"

	"vinfra/internal/geo"
)

// TestShardPlanePartitionEdgeCases drives the partition pass (sequential
// and parallel counting-sort alike) through its degenerate inputs — every
// node dead, a single alive node, nodes sitting exactly on shard-boundary
// cell edges, and a population clustered so tightly that whole shard
// rectangles have zero residents — and checks each against the
// single-medium sequential run.
func TestShardPlanePartitionEdgeCases(t *testing.T) {
	const r2 = 10.0
	cases := []struct {
		name      string
		positions []geo.Point
		mover     Mover // nil keeps nodes pinned (boundary case)
		prep      func(e *Engine)
		grid      struct{ cols, rows int }
		wantEmpty bool // some shard rectangle must end the run resident-free
	}{
		{
			name: "all nodes dead",
			positions: []geo.Point{
				{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 16, Y: 8}, {X: 24, Y: 16}, {X: 8, Y: 24}, {X: 0, Y: 16},
			},
			mover: roamMover{},
			prep: func(e *Engine) {
				for i := 0; i < e.NumNodes(); i++ {
					e.Crash(NodeID(i))
				}
			},
			grid:      struct{ cols, rows int }{2, 2},
			wantEmpty: true,
		},
		{
			name: "single alive node",
			positions: []geo.Point{
				{X: 0, Y: 0}, {X: 9, Y: 3}, {X: 18, Y: 9}, {X: 27, Y: 15}, {X: 9, Y: 21},
			},
			mover: roamMover{},
			prep: func(e *Engine) {
				for i := 0; i < e.NumNodes(); i++ {
					if i != 2 {
						e.Crash(NodeID(i))
					}
				}
			},
			grid:      struct{ cols, rows int }{3, 3},
			wantEmpty: true,
		},
		{
			// Cell size equals r2 = 10, so multiples of 10 sit exactly on
			// cell edges (and therefore on shard-rectangle edges). Pinned
			// movers keep them there for the whole run: every round's
			// partition must bin the edge cases identically to CellOf in
			// the sequential pass.
			name: "nodes exactly on shard-boundary cell edges",
			positions: []geo.Point{
				{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 10, Y: 10},
				{X: 20, Y: 10}, {X: 0, Y: 20}, {X: 20, Y: 20}, {X: 30, Y: 10},
			},
			mover: nil,
			prep:  nil,
			grid:  struct{ cols, rows int }{2, 2},
		},
		{
			// Fit shrinks the occupied-cell bounding box to a couple of
			// cells; a 3x3 shard grid over it leaves rectangles owning no
			// cells at all. Their mediums must simply never be consulted.
			name: "zero-resident shard rectangles",
			positions: []geo.Point{
				{X: 0, Y: 0}, {X: 1, Y: 2}, {X: 2, Y: 1}, {X: 3, Y: 3}, {X: 1, Y: 1}, {X: 2.5, Y: 0.5},
			},
			mover:     nil,
			prep:      nil,
			grid:      struct{ cols, rows int }{3, 3},
			wantEmpty: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(opts ...Option) ([][]Reception, []geo.Point, []bool, *Engine) {
				e := NewEngine(diskMedium{r2: r2}, append([]Option{WithSeed(5)}, opts...)...)
				defer e.Close()
				nodes := make([]*sparseEcho, len(tc.positions))
				for i, p := range tc.positions {
					i := i
					e.Attach(p, tc.mover, func(env Env) Node {
						nodes[i] = &sparseEcho{env: env, burst: 2 + i%2}
						return nodes[i]
					})
				}
				if tc.prep != nil {
					tc.prep(e)
				}
				e.Run(6)
				heard := make([][]Reception, len(nodes))
				pos := make([]geo.Point, len(nodes))
				alive := make([]bool, len(nodes))
				for i, n := range nodes {
					heard[i] = n.heard
					pos[i] = e.Position(NodeID(i))
					alive[i] = e.Alive(NodeID(i))
				}
				return heard, pos, alive, e
			}

			wantHeard, wantPos, wantAlive, _ := run()
			shardOpts := []Option{WithRegionShards(tc.grid.cols, tc.grid.rows, r2, func() Medium {
				return diskMedium{r2: r2}
			})}
			for _, par := range []bool{false, true} {
				opts := shardOpts
				label := "sequential"
				if par {
					opts = append(opts, WithParallel(), WithWorkers(3))
					label = "parallel"
				}
				heard, pos, alive, e := run(opts...)
				if !reflect.DeepEqual(heard, wantHeard) {
					t.Fatalf("%s: sharded reception log diverged from single-medium run", label)
				}
				if !reflect.DeepEqual(pos, wantPos) {
					t.Fatalf("%s: sharded trajectories diverged", label)
				}
				if !reflect.DeepEqual(alive, wantAlive) {
					t.Fatalf("%s: sharded liveness diverged", label)
				}
				if tc.wantEmpty {
					empty := 0
					for _, res := range e.plane.resident {
						if len(res) == 0 {
							empty++
						}
					}
					if empty == 0 {
						t.Fatalf("%s: expected at least one resident-free shard rectangle, all %d occupied",
							label, len(e.plane.resident))
					}
				}
			}
		})
	}
}
