package sim

import (
	"testing"

	"vinfra/internal/geo"
)

func benchEngine(b *testing.B, nodes int, parallel bool) {
	opts := []Option{WithSeed(1)}
	if parallel {
		opts = append(opts, WithParallel())
	}
	e := NewEngine(perfectMedium{}, opts...)
	for i := 0; i < nodes; i++ {
		e.Attach(geo.Point{X: float64(i)}, nil, func(env Env) Node {
			return &echoNode{env: env}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStep8(b *testing.B)          { benchEngine(b, 8, false) }
func BenchmarkEngineStep64(b *testing.B)         { benchEngine(b, 64, false) }
func BenchmarkEngineStep64Parallel(b *testing.B) { benchEngine(b, 64, true) }

func BenchmarkEngineMobility(b *testing.B) {
	e := NewEngine(perfectMedium{})
	for i := 0; i < 32; i++ {
		e.Attach(geo.Point{X: float64(i)}, driftMover{}, func(Env) Node {
			return &silentNode{}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
