package sim

import (
	"testing"

	"vinfra/internal/geo"
)

func benchEngine(b *testing.B, nodes int, parallel bool) {
	opts := []Option{WithSeed(1)}
	if parallel {
		opts = append(opts, WithParallel())
	}
	e := NewEngine(perfectMedium{}, opts...)
	for i := 0; i < nodes; i++ {
		e.Attach(geo.Point{X: float64(i)}, nil, func(env Env) Node {
			return &echoNode{env: env}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStep8(b *testing.B)          { benchEngine(b, 8, false) }
func BenchmarkEngineStep64(b *testing.B)         { benchEngine(b, 64, false) }
func BenchmarkEngineStep64Parallel(b *testing.B) { benchEngine(b, 64, true) }

// nullMedium hears nothing: it isolates the engine's own per-round fan-out
// cost from delivery cost (internal/radio's benchmarks cover the latter).
// Like radio.Medium it reuses its reception slice across rounds, so the
// benchmarks and the allocation gate see the engine's own allocations.
type nullMedium struct{ out []Reception }

func (m *nullMedium) Deliver(r Round, _ []Transmission, rxs []NodeInfo) []Reception {
	if cap(m.out) < len(rxs) {
		m.out = make([]Reception, len(rxs))
	}
	out := m.out[:len(rxs)]
	for i := range out {
		out[i] = Reception{Round: r}
	}
	return out
}

// benchMsg is a shared pre-boxed message: transmitting it allocates
// nothing, so the large benchmarks measure the engine, not boxing.
var benchMsg Message = "m"

// countNode transmits every round and counts receptions without retaining
// them, so large benchmarks run in constant memory.
type countNode struct {
	env      Env
	received int
}

func (n *countNode) Transmit(Round) Message   { return benchMsg }
func (n *countNode) Receive(Round, Reception) { n.received++ }

// The 1k/10k sizes track the round-delivery scaling work: they measure the
// engine's fan-out overhead at emulator scale.
func benchEngineLarge(b *testing.B, nodes int, parallel bool) {
	opts := []Option{WithSeed(1)}
	if parallel {
		opts = append(opts, WithParallel())
	}
	e := NewEngine(&nullMedium{}, opts...)
	for i := 0; i < nodes; i++ {
		e.Attach(geo.Point{X: float64(i)}, nil, func(env Env) Node {
			return &countNode{env: env}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStep1k(b *testing.B)          { benchEngineLarge(b, 1_000, false) }
func BenchmarkEngineStep1kParallel(b *testing.B)  { benchEngineLarge(b, 1_000, true) }
func BenchmarkEngineStep10k(b *testing.B)         { benchEngineLarge(b, 10_000, false) }
func BenchmarkEngineStep10kParallel(b *testing.B) { benchEngineLarge(b, 10_000, true) }

// benchEngineSharded measures a region-sharded parallel round (partition +
// per-shard collect/deliver) on an 8-shard grid, with the nodes spread over
// the shard rectangles. spawn=true forces the legacy goroutine-per-round
// fan-out; spawn=false runs the persistent worker runtime — the comparison
// is the pool's scheduling win, everything else being byte-identical.
func benchEngineSharded(b *testing.B, nodes int, spawn bool) {
	e := NewEngine(nil,
		WithSeed(1),
		WithRegionShards(4, 2, 20, func() Medium { return &nullMedium{} }),
		WithParallel(),
		WithWorkers(8),
	)
	defer e.Close()
	e.spawnFanout = spawn
	cols := 1
	for cols*cols < nodes {
		cols++
	}
	for i := 0; i < nodes; i++ {
		e.Attach(geo.Point{X: float64(i%cols) * 1.6, Y: float64(i/cols) * 1.6}, nil, func(env Env) Node {
			return &countNode{env: env}
		})
	}
	e.Run(2) // warm buffers; start the pool on the pool variant
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStepSharded(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		name := "10k"
		if n == 100_000 {
			name = "100k"
		}
		b.Run(name+"/pool", func(b *testing.B) { benchEngineSharded(b, n, false) })
		b.Run(name+"/spawn", func(b *testing.B) { benchEngineSharded(b, n, true) })
	}
}

func BenchmarkEngineMobility(b *testing.B) {
	e := NewEngine(perfectMedium{})
	for i := 0; i < 32; i++ {
		e.Attach(geo.Point{X: float64(i)}, driftMover{}, func(Env) Node {
			return &silentNode{}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
