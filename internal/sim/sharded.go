package sim

import (
	"fmt"
	"math"
	"time"

	"vinfra/internal/shard"
)

// WithRegionShards partitions the world into a cols x rows grid of
// shard-owned cell rectangles (cells of side cellSize, which must be at
// least the medium's interference radius) and gives each shard its own
// Medium from factory. Each round, after mobility, every alive node is
// assigned to the shard owning its cell; each shard collects its
// residents' transmissions and delivers to its residents only, with
// boundary-band transmissions (cells within one cell — i.e. within the
// interference radius — of a shard edge) copied to the neighboring shards
// before delivery. Merges are keyed by (cell, node) order: residents,
// candidate transmissions and receptions are all assembled by walking the
// alive list in NodeID order, so the output is byte-identical to the
// single-medium engine for any shard count — provided the Medium derives
// each reception only from the receiver, the round and the transmissions
// within the interference radius (the radio.Medium contract; see the
// Medium docs in types.go).
//
// Under WithParallel the shards run concurrently on the engine's
// persistent worker runtime (one chunk per shard by default, or chunked
// over WithWorkers workers) and the partition pass itself fans out as a
// per-chunk counting sort; without it they run sequentially,
// byte-identical either way.
func WithRegionShards(cols, rows int, cellSize float64, factory func() Medium) Option {
	return func(e *Engine) {
		plan, err := shard.NewPlan(cellSize, cols, rows)
		if err != nil {
			panic("sim: WithRegionShards: " + err.Error())
		}
		if factory == nil {
			panic("sim: WithRegionShards requires a Medium factory")
		}
		sp := &shardPlane{plan: plan}
		for i := 0; i < plan.Shards(); i++ {
			m := factory()
			if m == nil {
				panic("sim: WithRegionShards factory returned a nil Medium")
			}
			sp.mediums = append(sp.mediums, m)
		}
		sp.resident = make([][]*nodeState, plan.Shards())
		sp.infos = make([][]NodeInfo, plan.Shards())
		sp.cands = make([][]Transmission, plan.Shards())
		e.plane = sp
	}
}

// RegionShards returns the number of region shards (0 when the engine runs
// the single-medium path).
func (e *Engine) RegionShards() int {
	if e.plane == nil {
		return 0
	}
	return e.plane.plan.Shards()
}

// shardPlane owns the region-sharded round state: the partition plan, one
// Medium per shard, and per-shard resident/candidate buffers reused across
// rounds (the steady-state sharded loop allocates nothing of its own).
type shardPlane struct {
	plan    *shard.Plan
	mediums []Medium

	// Per-shard views, rebuilt (in NodeID order) every round.
	resident [][]*nodeState   // alive nodes owned by each shard
	infos    [][]NodeInfo     // the shard medium's view of its residents
	cands    [][]Transmission // candidate transmissions per shard (own + halo)

	cellX, cellY []int64     // per-alive-index cell coords, one partition pass
	rxs          []Reception // global receptions, indexed by NodeID
	halo         int         // boundary-band copies scattered this round

	// Parallel-partition scratch, reused across rounds: the counting-sort
	// state each partition chunk owns. owner holds every alive node's
	// shard (computed once in the count phase, read in the write phase);
	// bounds/counts/offs are per-chunk — chunk w touches only bounds[w],
	// counts[w] and offs[w], so the phases run race-free on the worker
	// runtime and the merged resident lists are NodeID-ordered for any
	// chunk count.
	owner  []int32
	bounds []cellBounds
	counts [][]int32
	offs   [][]int32

	// Cached fan-out closures (the engine's mobFn idiom: building them per
	// round would allocate because the worker handoff moves them to the
	// heap).
	txFn    func(w, lo, hi int)
	rxFn    func(w, lo, hi int)
	cellFn  func(w, lo, hi int)
	countFn func(w, lo, hi int)
	writeFn func(w, lo, hi int)
	eng     *Engine
}

// cellBounds is one partition chunk's occupied-cell bounding box.
type cellBounds struct {
	minCX, minCY, maxCX, maxCY int64
}

// round runs the sharded partition/transmit/deliver/receive phases for
// round r, after the engine has applied faults, crashes and mobility. It
// returns the merged transmission list and the global reception slice
// (indexed by NodeID, like the single-medium path) for stats and hooks.
func (sp *shardPlane) round(e *Engine, r Round) ([]Transmission, []Reception) {
	sp.eng = e
	start := time.Now() //detlint:walltime partition cost is a Measured perf column (E14), never state
	sp.partition(e)
	e.partTime += time.Since(start) //detlint:walltime see above
	txs := sp.collect(e)
	sp.scatter(txs)
	sp.deliverAndReceive(e, r)
	return txs, sp.rxs
}

// partition assigns every alive node to the shard owning its post-mobility
// cell. Fitting the shard grid to the occupied cell bounding box each
// round keeps the split meaningful under mobility and churn. The pass
// scales with cores instead of devices: the cell/bounds scan, the
// per-chunk counting sort and the resident writes all fan out over the
// worker runtime in contiguous alive-list chunks, and because the alive
// list is NodeID-ordered and chunk w's residents land at offsets computed
// from the chunks before it, each shard's resident (and info) slice is
// NodeID-ordered by construction — identical for every chunk count, so
// sharded≡sequential holds for any worker width.
func (sp *shardPlane) partition(e *Engine) {
	for s := range sp.cands {
		sp.cands[s] = sp.cands[s][:0]
	}
	n := len(e.alive)
	k := 1
	if e.parallel {
		if k = e.fanout(); k > n {
			k = n
		}
	}
	if k <= 1 {
		sp.partitionSeq(e, n)
		return
	}

	if cap(sp.cellX) < n {
		sp.cellX = make([]int64, n)
		sp.cellY = make([]int64, n)
		sp.owner = make([]int32, n)
	}
	sp.cellX, sp.cellY, sp.owner = sp.cellX[:cap(sp.cellX)], sp.cellY[:cap(sp.cellY)], sp.owner[:cap(sp.owner)]
	shards := sp.plan.Shards()
	for len(sp.bounds) < k {
		sp.bounds = append(sp.bounds, cellBounds{})
		sp.counts = append(sp.counts, make([]int32, shards))
		sp.offs = append(sp.offs, make([]int32, shards))
	}

	// Phase 1: cell coordinates plus a per-chunk bounding box.
	if sp.cellFn == nil {
		sp.cellFn = func(w, lo, hi int) {
			e := sp.eng
			b := cellBounds{math.MaxInt64, math.MaxInt64, math.MinInt64, math.MinInt64}
			for i := lo; i < hi; i++ {
				cx, cy := sp.plan.CellOf(e.alive[i].pos)
				sp.cellX[i], sp.cellY[i] = cx, cy
				if cx < b.minCX {
					b.minCX = cx
				}
				if cx > b.maxCX {
					b.maxCX = cx
				}
				if cy < b.minCY {
					b.minCY = cy
				}
				if cy > b.maxCY {
					b.maxCY = cy
				}
			}
			sp.bounds[w] = b
		}
	}
	e.runChunks(n, k, sp.cellFn)
	b := sp.bounds[0]
	for _, c := range sp.bounds[1:k] {
		if c.minCX < b.minCX {
			b.minCX = c.minCX
		}
		if c.maxCX > b.maxCX {
			b.maxCX = c.maxCX
		}
		if c.minCY < b.minCY {
			b.minCY = c.minCY
		}
		if c.maxCY > b.maxCY {
			b.maxCY = c.maxCY
		}
	}
	sp.plan.Fit(b.minCX, b.minCY, b.maxCX, b.maxCY)

	// Phase 2: counting sort — each chunk bins its own nodes by owner.
	if sp.countFn == nil {
		sp.countFn = func(w, lo, hi int) {
			counts := sp.counts[w]
			for s := range counts {
				counts[s] = 0
			}
			for i := lo; i < hi; i++ {
				s := sp.plan.Owner(sp.cellX[i], sp.cellY[i])
				sp.owner[i] = int32(s)
				counts[s]++
			}
		}
	}
	e.runChunks(n, k, sp.countFn)

	// Sequential seam: per-(chunk, shard) write offsets and exact resident
	// lengths. O(k*shards), independent of the device count.
	for s := 0; s < shards; s++ {
		tot := 0
		for w := 0; w < k; w++ {
			sp.offs[w][s] = int32(tot)
			tot += int(sp.counts[w][s])
		}
		if cap(sp.resident[s]) < tot {
			sp.resident[s] = make([]*nodeState, tot)
			sp.infos[s] = make([]NodeInfo, tot)
		}
		sp.resident[s] = sp.resident[s][:tot]
		sp.infos[s] = sp.infos[s][:tot]
	}

	// Phase 3: every chunk writes its residents at its own offsets —
	// chunk w's slots in shard s start where chunk w-1's ended, so the
	// merged order is exactly the alive list's NodeID order.
	if sp.writeFn == nil {
		sp.writeFn = func(w, lo, hi int) {
			e := sp.eng
			offs := sp.offs[w]
			for i := lo; i < hi; i++ {
				st := e.alive[i]
				s := sp.owner[i]
				j := offs[s]
				offs[s] = j + 1
				sp.resident[s][j] = st
				sp.infos[s][j] = NodeInfo{ID: st.id, At: st.pos, Alive: true}
			}
		}
	}
	e.runChunks(n, k, sp.writeFn)
}

// partitionSeq is the single-threaded partition (no WithParallel, or a
// population too small to chunk): the same two NodeID-ordered passes the
// plane has always run, byte-identical to the parallel counting sort.
func (sp *shardPlane) partitionSeq(e *Engine, n int) {
	for s := range sp.resident {
		sp.resident[s] = sp.resident[s][:0]
		sp.infos[s] = sp.infos[s][:0]
	}
	if n == 0 {
		return
	}
	if cap(sp.cellX) < n {
		sp.cellX = make([]int64, n)
		sp.cellY = make([]int64, n)
		sp.owner = make([]int32, n)
	}
	cellX, cellY := sp.cellX[:n], sp.cellY[:n]
	var minCX, minCY, maxCX, maxCY int64 = math.MaxInt64, math.MaxInt64, math.MinInt64, math.MinInt64
	for i, st := range e.alive {
		cx, cy := sp.plan.CellOf(st.pos)
		cellX[i], cellY[i] = cx, cy
		if cx < minCX {
			minCX = cx
		}
		if cx > maxCX {
			maxCX = cx
		}
		if cy < minCY {
			minCY = cy
		}
		if cy > maxCY {
			maxCY = cy
		}
	}
	sp.plan.Fit(minCX, minCY, maxCX, maxCY)
	for i, st := range e.alive {
		s := sp.plan.Owner(cellX[i], cellY[i])
		sp.resident[s] = append(sp.resident[s], st)
		sp.infos[s] = append(sp.infos[s], NodeInfo{ID: st.id, At: st.pos, Alive: true})
	}
}

// collect fans Transmit out across the shards (writing the engine's
// per-node slots) and merges the non-nil results over the global alive
// list, so the transmission order is NodeID order — identical to the
// single-medium engine regardless of shard count or scheduling.
func (sp *shardPlane) collect(e *Engine) []Transmission {
	if len(e.txSlots) < len(e.nodes) {
		e.txSlots = make([]Message, len(e.nodes))
	}
	if sp.txFn == nil {
		sp.txFn = func(_, lo, hi int) {
			e := sp.eng
			for s := lo; s < hi; s++ {
				for _, st := range sp.resident[s] {
					e.txSlots[st.id] = st.node.Transmit(e.curRound)
				}
			}
		}
	}
	e.runChunks(len(sp.resident), sp.workers(e), sp.txFn)
	e.txs = e.txs[:0]
	for _, st := range e.alive {
		if m := e.txSlots[st.id]; m != nil {
			e.txs = append(e.txs, Transmission{Sender: st.id, From: st.pos, Msg: m})
			e.txSlots[st.id] = nil // drop the reference for GC
		}
	}
	return e.txs
}

// scatter hands every transmission to each shard whose rectangle its 3x3
// cell halo intersects: the owning shard always, plus the neighbors when
// the sender sits in the boundary band (within one cell of a shard edge).
// This is the round-edge boundary exchange — each shard medium sees a
// candidate superset covering the interference radius around every one of
// its residents. txs is NodeID-ordered, so each shard's candidate list is
// too (the deterministic merge key: cells ordered by their senders).
func (sp *shardPlane) scatter(txs []Transmission) {
	sp.halo = 0
	if sp.plan.Shards() == 1 {
		sp.cands[0] = append(sp.cands[0], txs...)
		return
	}
	cols := sp.plan.Cols()
	for i := range txs {
		cx, cy := sp.plan.CellOf(txs[i].From)
		own := sp.plan.Owner(cx, cy)
		c0, c1, r0, r1 := sp.plan.HaloSpan(cx, cy)
		for sr := r0; sr <= r1; sr++ {
			for sc := c0; sc <= c1; sc++ {
				s := sr*cols + sc
				sp.cands[s] = append(sp.cands[s], txs[i])
				if s != own {
					sp.halo++
				}
			}
		}
	}
}

// deliverAndReceive runs each shard's Deliver over its residents and
// candidates, scatters the shard receptions into the global NodeID-indexed
// slice, and fans Receive out — all within the shard, so a parallel run
// touches disjoint state per worker. Dead (or never-resident) nodes get
// the empty reception, exactly like a single Medium's output.
func (sp *shardPlane) deliverAndReceive(e *Engine, r Round) {
	n := len(e.nodes)
	if cap(sp.rxs) < n {
		sp.rxs = make([]Reception, n)
	}
	sp.rxs = sp.rxs[:n]
	for i := range sp.rxs {
		sp.rxs[i] = Reception{Round: r}
	}
	if sp.rxFn == nil {
		sp.rxFn = func(_, lo, hi int) {
			e := sp.eng
			for s := lo; s < hi; s++ {
				res := sp.resident[s]
				if len(res) == 0 {
					continue
				}
				out := sp.mediums[s].Deliver(e.curRound, sp.cands[s], sp.infos[s])
				if len(out) != len(res) {
					panic(fmt.Sprintf("sim: shard %d medium returned %d receptions for %d residents",
						s, len(out), len(res)))
				}
				for i, st := range res {
					sp.rxs[st.id] = out[i]
					st.node.Receive(e.curRound, out[i])
				}
			}
		}
	}
	e.runChunks(len(sp.resident), sp.workers(e), sp.rxFn)
}

// workers returns the fan-out width for the per-shard loops: sequential
// without WithParallel, one chunk per shard by default under it, or the
// explicit WithWorkers bound (contiguous shard chunks per worker). The
// chunks run on the engine's persistent worker runtime, not on per-round
// goroutines.
func (sp *shardPlane) workers(e *Engine) int {
	if !e.parallel {
		return 1
	}
	if e.workers > 0 {
		return e.workers
	}
	return len(sp.resident)
}
