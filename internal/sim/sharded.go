package sim

import (
	"fmt"
	"math"

	"vinfra/internal/shard"
)

// WithRegionShards partitions the world into a cols x rows grid of
// shard-owned cell rectangles (cells of side cellSize, which must be at
// least the medium's interference radius) and gives each shard its own
// Medium from factory. Each round, after mobility, every alive node is
// assigned to the shard owning its cell; each shard collects its
// residents' transmissions and delivers to its residents only, with
// boundary-band transmissions (cells within one cell — i.e. within the
// interference radius — of a shard edge) copied to the neighboring shards
// before delivery. Merges are keyed by (cell, node) order: residents,
// candidate transmissions and receptions are all assembled by walking the
// alive list in NodeID order, so the output is byte-identical to the
// single-medium engine for any shard count — provided the Medium derives
// each reception only from the receiver, the round and the transmissions
// within the interference radius (the radio.Medium contract; see the
// Medium docs in types.go).
//
// Under WithParallel the shards run concurrently (one goroutine per shard
// by default, or chunked over WithWorkers workers); without it they run
// sequentially, byte-identical either way.
func WithRegionShards(cols, rows int, cellSize float64, factory func() Medium) Option {
	return func(e *Engine) {
		plan, err := shard.NewPlan(cellSize, cols, rows)
		if err != nil {
			panic("sim: WithRegionShards: " + err.Error())
		}
		if factory == nil {
			panic("sim: WithRegionShards requires a Medium factory")
		}
		sp := &shardPlane{plan: plan}
		for i := 0; i < plan.Shards(); i++ {
			m := factory()
			if m == nil {
				panic("sim: WithRegionShards factory returned a nil Medium")
			}
			sp.mediums = append(sp.mediums, m)
		}
		sp.resident = make([][]*nodeState, plan.Shards())
		sp.infos = make([][]NodeInfo, plan.Shards())
		sp.cands = make([][]Transmission, plan.Shards())
		e.plane = sp
	}
}

// RegionShards returns the number of region shards (0 when the engine runs
// the single-medium path).
func (e *Engine) RegionShards() int {
	if e.plane == nil {
		return 0
	}
	return e.plane.plan.Shards()
}

// shardPlane owns the region-sharded round state: the partition plan, one
// Medium per shard, and per-shard resident/candidate buffers reused across
// rounds (the steady-state sharded loop allocates nothing of its own).
type shardPlane struct {
	plan    *shard.Plan
	mediums []Medium

	// Per-shard views, rebuilt (in NodeID order) every round.
	resident [][]*nodeState   // alive nodes owned by each shard
	infos    [][]NodeInfo     // the shard medium's view of its residents
	cands    [][]Transmission // candidate transmissions per shard (own + halo)

	cellX, cellY []int64     // per-alive-index cell coords, one partition pass
	rxs          []Reception // global receptions, indexed by NodeID
	halo         int         // boundary-band copies scattered this round

	// Cached fan-out closures (the engine's mobFn idiom: building them per
	// round would allocate because Shard moves them to the heap).
	txFn func(lo, hi int)
	rxFn func(lo, hi int)
	eng  *Engine
}

// round runs the sharded transmit/deliver/receive phases for round r,
// after the engine has applied faults, crashes and mobility. It returns
// the merged transmission list and the global reception slice (indexed by
// NodeID, like the single-medium path) for stats and hooks.
func (sp *shardPlane) round(e *Engine, r Round) ([]Transmission, []Reception) {
	sp.eng = e
	sp.partition(e)
	txs := sp.collect(e)
	sp.scatter(txs)
	sp.deliverAndReceive(e, r)
	return txs, sp.rxs
}

// partition assigns every alive node to the shard owning its post-mobility
// cell. Fitting the shard grid to the occupied cell bounding box each
// round keeps the split meaningful under mobility and churn; both passes
// walk the alive list in NodeID order, so each shard's resident (and info)
// slice is NodeID-ordered by construction.
func (sp *shardPlane) partition(e *Engine) {
	for s := range sp.resident {
		sp.resident[s] = sp.resident[s][:0]
		sp.infos[s] = sp.infos[s][:0]
		sp.cands[s] = sp.cands[s][:0]
	}
	n := len(e.alive)
	if n == 0 {
		return
	}
	if cap(sp.cellX) < n {
		sp.cellX = make([]int64, n)
		sp.cellY = make([]int64, n)
	}
	cellX, cellY := sp.cellX[:n], sp.cellY[:n]
	var minCX, minCY, maxCX, maxCY int64 = math.MaxInt64, math.MaxInt64, math.MinInt64, math.MinInt64
	for i, st := range e.alive {
		cx, cy := sp.plan.CellOf(st.pos)
		cellX[i], cellY[i] = cx, cy
		if cx < minCX {
			minCX = cx
		}
		if cx > maxCX {
			maxCX = cx
		}
		if cy < minCY {
			minCY = cy
		}
		if cy > maxCY {
			maxCY = cy
		}
	}
	sp.plan.Fit(minCX, minCY, maxCX, maxCY)
	for i, st := range e.alive {
		s := sp.plan.Owner(cellX[i], cellY[i])
		sp.resident[s] = append(sp.resident[s], st)
		sp.infos[s] = append(sp.infos[s], NodeInfo{ID: st.id, At: st.pos, Alive: true})
	}
}

// collect fans Transmit out across the shards (writing the engine's
// per-node slots) and merges the non-nil results over the global alive
// list, so the transmission order is NodeID order — identical to the
// single-medium engine regardless of shard count or scheduling.
func (sp *shardPlane) collect(e *Engine) []Transmission {
	if len(e.txSlots) < len(e.nodes) {
		e.txSlots = make([]Message, len(e.nodes))
	}
	if sp.txFn == nil {
		sp.txFn = func(lo, hi int) {
			e := sp.eng
			for s := lo; s < hi; s++ {
				for _, st := range sp.resident[s] {
					e.txSlots[st.id] = st.node.Transmit(e.curRound)
				}
			}
		}
	}
	Shard(len(sp.resident), sp.workers(e), sp.txFn)
	e.txs = e.txs[:0]
	for _, st := range e.alive {
		if m := e.txSlots[st.id]; m != nil {
			e.txs = append(e.txs, Transmission{Sender: st.id, From: st.pos, Msg: m})
			e.txSlots[st.id] = nil // drop the reference for GC
		}
	}
	return e.txs
}

// scatter hands every transmission to each shard whose rectangle its 3x3
// cell halo intersects: the owning shard always, plus the neighbors when
// the sender sits in the boundary band (within one cell of a shard edge).
// This is the round-edge boundary exchange — each shard medium sees a
// candidate superset covering the interference radius around every one of
// its residents. txs is NodeID-ordered, so each shard's candidate list is
// too (the deterministic merge key: cells ordered by their senders).
func (sp *shardPlane) scatter(txs []Transmission) {
	sp.halo = 0
	if sp.plan.Shards() == 1 {
		sp.cands[0] = append(sp.cands[0], txs...)
		return
	}
	cols := sp.plan.Cols()
	for i := range txs {
		cx, cy := sp.plan.CellOf(txs[i].From)
		own := sp.plan.Owner(cx, cy)
		c0, c1, r0, r1 := sp.plan.HaloSpan(cx, cy)
		for sr := r0; sr <= r1; sr++ {
			for sc := c0; sc <= c1; sc++ {
				s := sr*cols + sc
				sp.cands[s] = append(sp.cands[s], txs[i])
				if s != own {
					sp.halo++
				}
			}
		}
	}
}

// deliverAndReceive runs each shard's Deliver over its residents and
// candidates, scatters the shard receptions into the global NodeID-indexed
// slice, and fans Receive out — all within the shard, so a parallel run
// touches disjoint state per worker. Dead (or never-resident) nodes get
// the empty reception, exactly like a single Medium's output.
func (sp *shardPlane) deliverAndReceive(e *Engine, r Round) {
	n := len(e.nodes)
	if cap(sp.rxs) < n {
		sp.rxs = make([]Reception, n)
	}
	sp.rxs = sp.rxs[:n]
	for i := range sp.rxs {
		sp.rxs[i] = Reception{Round: r}
	}
	if sp.rxFn == nil {
		sp.rxFn = func(lo, hi int) {
			e := sp.eng
			for s := lo; s < hi; s++ {
				res := sp.resident[s]
				if len(res) == 0 {
					continue
				}
				out := sp.mediums[s].Deliver(e.curRound, sp.cands[s], sp.infos[s])
				if len(out) != len(res) {
					panic(fmt.Sprintf("sim: shard %d medium returned %d receptions for %d residents",
						s, len(out), len(res)))
				}
				for i, st := range res {
					sp.rxs[st.id] = out[i]
					st.node.Receive(e.curRound, out[i])
				}
			}
		}
	}
	Shard(len(sp.resident), sp.workers(e), sp.rxFn)
}

// workers returns the fan-out width for the per-shard loops: sequential
// without WithParallel, one goroutine per shard by default under it, or
// the explicit WithWorkers bound (contiguous shard chunks per worker).
func (sp *shardPlane) workers(e *Engine) int {
	if !e.parallel {
		return 1
	}
	if e.workers > 0 {
		return e.workers
	}
	return len(sp.resident)
}
