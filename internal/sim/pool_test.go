package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"

	"vinfra/internal/geo"
)

// snapshotShardedEngine builds a region-sharded parallel deployment of
// Snapshotter nodes (counterNode + phaseMover, as in the snapshot tests)
// over a diskMedium world, with enough workers that the persistent pool
// actually engages even on a single-CPU machine.
func snapshotShardedEngine(n int) (*Engine, []*counterNode) {
	e := NewEngine(nil,
		WithSeed(42),
		WithRegionShards(2, 2, 10, func() Medium { return diskMedium{r2: 10} }),
		WithParallel(),
		WithWorkers(3),
	)
	nodes := make([]*counterNode, n)
	for i := 0; i < n; i++ {
		i := i
		e.Attach(geo.Point{X: float64(i%4) * 7, Y: float64(i/4) * 7}, &phaseMover{}, func(env Env) Node {
			nodes[i] = &counterNode{env: env}
			return nodes[i]
		})
	}
	return e, nodes
}

// runPoolScenario drives a churned, mobile cluster for rounds steps; when
// closeEvery > 0 the engine's worker runtime is torn down (Close) every
// closeEvery rounds, forcing lazy pool rebuilds mid-run. Returns every
// observable so pool lifecycle events can be shown to leave no trace.
func runPoolScenario(rounds, closeEvery int, opts ...Option) ([][]Reception, []geo.Point, []bool, Stats) {
	e := NewEngine(diskMedium{r2: 10}, append([]Option{WithSeed(11)}, opts...)...)
	defer e.Close()
	var nodes []*sparseEcho
	attach := func(n int) {
		for i := 0; i < n; i++ {
			k := len(nodes)
			pos := geo.Point{X: float64(k%7) * 6, Y: float64(k/7) * 6}
			e.Attach(pos, roamMover{}, func(env Env) Node {
				node := &sparseEcho{env: env, burst: 2 + k%3}
				nodes = append(nodes, node)
				return node
			})
		}
	}
	attach(30)
	for r := 0; r < rounds; r++ {
		switch r {
		case rounds / 3:
			e.CrashAt(2, e.Round())
			e.Leave(5)
		case rounds / 2:
			attach(6)
			e.Crash(9)
		}
		e.Step()
		if closeEvery > 0 && (r+1)%closeEvery == 0 {
			e.Close()
		}
	}
	heard := make([][]Reception, len(nodes))
	pos := make([]geo.Point, len(nodes))
	alive := make([]bool, len(nodes))
	for i, n := range nodes {
		heard[i] = n.heard
		pos[i] = e.Position(NodeID(i))
		alive[i] = e.Alive(NodeID(i))
	}
	return heard, pos, alive, e.Stats()
}

// TestPersistentPoolCloseMidRunEqualsSequential is the lifecycle half of
// the determinism contract for the worker runtime: a sharded parallel run,
// a run whose pool is torn down and lazily rebuilt every few rounds, and a
// run on the legacy spawn-per-round path must all be observable-identical
// to the plain single-medium sequential run.
func TestPersistentPoolCloseMidRunEqualsSequential(t *testing.T) {
	const rounds = 18
	wantHeard, wantPos, wantAlive, wantStats := runPoolScenario(rounds, 0)
	shardOpts := func(extra ...Option) []Option {
		return append([]Option{
			WithRegionShards(2, 2, 10, func() Medium { return diskMedium{r2: 10} }),
			WithParallel(),
			WithWorkers(4),
		}, extra...)
	}
	cases := []struct {
		name       string
		closeEvery int
		opts       []Option
	}{
		{"pool", 0, shardOpts()},
		{"pool-close-every-2", 2, shardOpts()},
		{"pool-close-every-5", 5, shardOpts()},
		{"parallel-unsharded", 3, []Option{WithParallel(), WithWorkers(4)}},
	}
	for _, tc := range cases {
		heard, pos, alive, stats := runPoolScenario(rounds, tc.closeEvery, tc.opts...)
		if !reflect.DeepEqual(heard, wantHeard) {
			t.Fatalf("%s: reception log diverged from sequential", tc.name)
		}
		if !reflect.DeepEqual(pos, wantPos) {
			t.Fatalf("%s: trajectories diverged", tc.name)
		}
		if !reflect.DeepEqual(alive, wantAlive) {
			t.Fatalf("%s: liveness diverged", tc.name)
		}
		gotCore, wantCore := stats, wantStats
		gotCore.HaloTransmissions, wantCore.HaloTransmissions = 0, 0
		if gotCore != wantCore {
			t.Fatalf("%s: stats %+v diverged from %+v", tc.name, stats, wantStats)
		}
	}
}

// TestPersistentPoolSnapshotRestore checks the checkpoint boundary of the
// worker runtime: taking a snapshot while the pool is live tears the pool
// down (a checkpoint carries no goroutines), restoring into a fresh engine
// and continuing is byte-identical to the uninterrupted run, and the
// snapshotted engine itself keeps stepping afterwards on a lazily rebuilt
// pool without diverging.
func TestPersistentPoolSnapshotRestore(t *testing.T) {
	straight, _ := snapshotShardedEngine(8)
	straight.Run(12)
	want := straight.Snapshot().AppendTo(nil)

	a, _ := snapshotShardedEngine(8)
	a.Run(5)
	if a.pool == nil {
		t.Fatal("parallel sharded engine ran 5 rounds without starting its worker pool")
	}
	snap := a.Snapshot()
	if a.pool != nil {
		t.Fatal("Snapshot left the worker pool running across the checkpoint boundary")
	}

	b, _ := snapshotShardedEngine(8)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	b.Run(7)
	if got := b.Snapshot().AppendTo(nil); !bytes.Equal(got, want) {
		t.Fatal("engine restored from a live-pool snapshot diverges from the uninterrupted run")
	}

	// The source engine is still usable: the pool is rebuilt on demand.
	a.Run(7)
	if a.pool == nil {
		t.Fatal("pool was not rebuilt after the post-snapshot rounds")
	}
	if got := a.Snapshot().AppendTo(nil); !bytes.Equal(got, want) {
		t.Fatal("snapshotted engine diverges when it continues past its own checkpoint")
	}
}

// TestPersistentPoolForkDeterministic forks from a snapshot taken while
// the worker pool was live: same fork seed twice is byte-identical,
// different seeds diverge — the pool contributes nothing to the stream.
func TestPersistentPoolForkDeterministic(t *testing.T) {
	src, _ := snapshotShardedEngine(6)
	src.Run(6)
	snap := src.Snapshot()

	fork := func(seed int64) []byte {
		e, _ := snapshotShardedEngine(6)
		if err := e.Fork(snap, seed); err != nil {
			t.Fatal(err)
		}
		e.Run(6)
		return e.Snapshot().AppendTo(nil)
	}
	a, b, c := fork(99), fork(99), fork(100)
	if !bytes.Equal(a, b) {
		t.Fatal("two forks with the same seed diverge")
	}
	if bytes.Equal(a, c) {
		t.Fatal("forks with different seeds are identical")
	}
}

// TestPersistentPoolCloseReleasesWorkers pins the goroutine lifecycle:
// stepping a parallel engine parks helper goroutines, Close releases every
// one of them, the engine remains usable afterwards (lazy rebuild), and
// Close is idempotent.
func TestPersistentPoolCloseReleasesWorkers(t *testing.T) {
	e, _ := snapshotShardedEngine(8)
	e.Run(3)
	if e.pool == nil {
		t.Fatal("parallel sharded engine ran without starting its worker pool")
	}
	helpers := len(e.pool.helpers)
	if helpers < 2 {
		t.Fatalf("pool has %d helpers, want at least 2 (WithWorkers(3))", helpers)
	}
	live := runtime.NumGoroutine()

	e.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > live-helpers {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines linger after Close, want <= %d (helpers not released)",
				runtime.NumGoroutine(), live-helpers)
		}
		time.Sleep(time.Millisecond)
	}

	before := e.Snapshot().AppendTo(nil)
	e.Run(2) // still usable: pool rebuilt lazily
	if e.pool == nil {
		t.Fatal("pool was not rebuilt after Close")
	}
	if bytes.Equal(e.Snapshot().AppendTo(nil), before) {
		t.Fatal("post-Close rounds did not advance the engine")
	}
	e.Close()
	e.Close() // idempotent
}
