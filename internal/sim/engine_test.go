package sim

import (
	"fmt"
	"testing"

	"vinfra/internal/geo"
)

// perfectMedium delivers every transmission to every alive node (including
// the sender) and never reports collisions.
type perfectMedium struct{}

func (perfectMedium) Deliver(r Round, txs []Transmission, rxs []NodeInfo) []Reception {
	out := make([]Reception, len(rxs))
	for i := range rxs {
		if !rxs[i].Alive {
			out[i] = Reception{Round: r}
			continue
		}
		msgs := make([]Message, 0, len(txs))
		for _, tx := range txs {
			msgs = append(msgs, tx.Msg)
		}
		out[i] = Reception{Round: r, Msgs: msgs}
	}
	return out
}

// echoNode broadcasts its ID every round and records everything it hears.
type echoNode struct {
	env   Env
	sent  int
	heard [][]Message
}

func (n *echoNode) Transmit(r Round) Message {
	n.sent++
	return fmt.Sprintf("msg-%d-%d", n.env.ID(), r)
}

func (n *echoNode) Receive(_ Round, rx Reception) {
	n.heard = append(n.heard, rx.Msgs)
}

// silentNode never transmits.
type silentNode struct {
	heard []Reception
}

func (n *silentNode) Transmit(Round) Message        { return nil }
func (n *silentNode) Receive(_ Round, rx Reception) { n.heard = append(n.heard, rx) }

func TestEngineBasicExchange(t *testing.T) {
	e := NewEngine(perfectMedium{})
	var a, b *echoNode
	e.Attach(geo.Point{}, nil, func(env Env) Node { a = &echoNode{env: env}; return a })
	e.Attach(geo.Point{X: 1}, nil, func(env Env) Node { b = &echoNode{env: env}; return b })

	e.Run(3)

	if a.sent != 3 || b.sent != 3 {
		t.Fatalf("sent = %d/%d, want 3/3", a.sent, b.sent)
	}
	if len(a.heard) != 3 {
		t.Fatalf("a heard %d rounds, want 3", len(a.heard))
	}
	for r, msgs := range a.heard {
		if len(msgs) != 2 {
			t.Errorf("round %d: a heard %d messages, want 2", r, len(msgs))
		}
	}
}

func TestEngineCrash(t *testing.T) {
	e := NewEngine(perfectMedium{})
	var a *echoNode
	var s *silentNode
	idA := e.Attach(geo.Point{}, nil, func(env Env) Node { a = &echoNode{env: env}; return a })
	e.Attach(geo.Point{}, nil, func(Env) Node { s = &silentNode{}; return s })

	e.CrashAt(idA, 2)
	e.Run(4)

	if a.sent != 2 {
		t.Errorf("crashed node sent %d messages, want 2", a.sent)
	}
	if e.Alive(idA) {
		t.Error("node should be dead after CrashAt round")
	}
	if got := e.AliveCount(); got != 1 {
		t.Errorf("AliveCount = %d, want 1", got)
	}
	// The silent node keeps receiving (empty) rounds after the crash.
	if len(s.heard) != 4 {
		t.Fatalf("silent node heard %d rounds, want 4", len(s.heard))
	}
	if len(s.heard[3].Msgs) != 0 {
		t.Errorf("round 3 should carry no messages, got %d", len(s.heard[3].Msgs))
	}
}

func TestEngineImmediateCrashAndLeave(t *testing.T) {
	e := NewEngine(perfectMedium{})
	var a *echoNode
	id := e.Attach(geo.Point{}, nil, func(env Env) Node { a = &echoNode{env: env}; return a })
	e.Crash(id)
	e.Run(2)
	if a.sent != 0 {
		t.Errorf("immediately crashed node transmitted %d times", a.sent)
	}
	id2 := e.Attach(geo.Point{}, nil, func(env Env) Node { return &silentNode{} })
	e.Leave(id2)
	if e.Alive(id2) {
		t.Error("node alive after Leave")
	}
}

func TestEngineMidRunAttach(t *testing.T) {
	e := NewEngine(perfectMedium{})
	var s *silentNode
	e.Attach(geo.Point{}, nil, func(Env) Node { s = &silentNode{}; return s })
	e.Run(2)
	var late *echoNode
	e.Attach(geo.Point{}, nil, func(env Env) Node { late = &echoNode{env: env}; return late })
	e.Run(2)
	if late.sent != 2 {
		t.Errorf("late joiner sent %d, want 2", late.sent)
	}
	if len(s.heard) != 4 {
		t.Fatalf("early node heard %d rounds, want 4", len(s.heard))
	}
	if len(s.heard[3].Msgs) != 1 {
		t.Errorf("early node should hear the late joiner, got %d msgs", len(s.heard[3].Msgs))
	}
}

type sizedMsg int

func (s sizedMsg) WireSize() int { return int(s) }

func TestEngineStats(t *testing.T) {
	e := NewEngine(perfectMedium{})
	e.Attach(geo.Point{}, nil, func(Env) Node { return staticSender{sizedMsg(10)} })
	e.Attach(geo.Point{}, nil, func(Env) Node { return staticSender{sizedMsg(30)} })
	e.Attach(geo.Point{}, nil, func(Env) Node { return &silentNode{} })
	e.Run(5)
	st := e.Stats()
	if st.Rounds != 5 {
		t.Errorf("Rounds = %d, want 5", st.Rounds)
	}
	if st.Transmissions != 10 {
		t.Errorf("Transmissions = %d, want 10", st.Transmissions)
	}
	if st.MaxMessageSize != 30 {
		t.Errorf("MaxMessageSize = %d, want 30", st.MaxMessageSize)
	}
	if st.TotalBytes != 5*(10+30) {
		t.Errorf("TotalBytes = %d, want 200", st.TotalBytes)
	}
}

type staticSender struct{ m Message }

func (s staticSender) Transmit(Round) Message { return s.m }
func (staticSender) Receive(Round, Reception) {}

func TestMessageSizeDefault(t *testing.T) {
	if got := MessageSize("hello"); got != DefaultMessageSize {
		t.Errorf("MessageSize(unsized) = %d, want %d", got, DefaultMessageSize)
	}
	if got := MessageSize(sizedMsg(17)); got != 17 {
		t.Errorf("MessageSize(sized) = %d, want 17", got)
	}
}

// driftMover moves +1 in X each round.
type driftMover struct{}

func (driftMover) Move(_ Round, cur geo.Point, _ func(int) int) geo.Point {
	return geo.Point{X: cur.X + 1, Y: cur.Y}
}

func TestEngineMobility(t *testing.T) {
	e := NewEngine(perfectMedium{})
	id := e.Attach(geo.Point{}, driftMover{}, func(Env) Node { return &silentNode{} })
	e.Run(4)
	if got := e.Position(id); got.X != 4 {
		t.Errorf("position after 4 rounds = %v, want X=4", got)
	}
	e.SetPosition(id, geo.Point{X: 100})
	if got := e.Position(id); got.X != 100 {
		t.Errorf("SetPosition: got %v", got)
	}
}

func TestEngineRoundHook(t *testing.T) {
	e := NewEngine(perfectMedium{})
	e.Attach(geo.Point{}, nil, func(env Env) Node { return &echoNode{env: env} })
	var rounds []Round
	var txCounts []int
	e.OnRound(func(r Round, txs []Transmission, rxs []Reception) {
		rounds = append(rounds, r)
		txCounts = append(txCounts, len(txs))
	})
	e.Run(3)
	if len(rounds) != 3 || rounds[2] != 2 {
		t.Errorf("hook rounds = %v, want [0 1 2]", rounds)
	}
	for i, c := range txCounts {
		if c != 1 {
			t.Errorf("round %d: hook saw %d txs, want 1", i, c)
		}
	}
}

// randNode draws one random number per round and records the sequence.
type randNode struct {
	env Env
	seq []int
}

func (n *randNode) Transmit(Round) Message {
	n.seq = append(n.seq, n.env.Intn(1<<30))
	return nil
}
func (n *randNode) Receive(Round, Reception) {}

func TestEngineDeterminismAcrossParallel(t *testing.T) {
	run := func(parallel bool) [][]int {
		opts := []Option{WithSeed(42)}
		if parallel {
			opts = append(opts, WithParallel())
		}
		e := NewEngine(perfectMedium{}, opts...)
		nodes := make([]*randNode, 8)
		for i := range nodes {
			e.Attach(geo.Point{}, nil, func(env Env) Node {
				n := &randNode{env: env}
				nodes[i] = n
				return n
			})
		}
		e.Run(20)
		out := make([][]int, len(nodes))
		for i, n := range nodes {
			out[i] = n.seq
		}
		return out
	}

	seq := run(false)
	par := run(true)
	for i := range seq {
		if len(seq[i]) != len(par[i]) {
			t.Fatalf("node %d: sequence lengths differ", i)
		}
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("node %d draw %d: sequential %d != parallel %d", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestEngineSeedsDiffer(t *testing.T) {
	draw := func(seed int64) int {
		e := NewEngine(perfectMedium{}, WithSeed(seed))
		var n *randNode
		e.Attach(geo.Point{}, nil, func(env Env) Node { n = &randNode{env: env}; return n })
		e.Run(1)
		return n.seq[0]
	}
	if draw(1) == draw(2) {
		t.Error("different seeds produced identical first draws")
	}
	if draw(7) != draw(7) {
		t.Error("same seed must reproduce the run")
	}
}

func TestEngineNumNodesAndRound(t *testing.T) {
	e := NewEngine(perfectMedium{})
	if e.Round() != 0 {
		t.Errorf("initial Round = %d", e.Round())
	}
	e.Attach(geo.Point{}, nil, func(Env) Node { return &silentNode{} })
	e.Attach(geo.Point{}, nil, func(Env) Node { return &silentNode{} })
	if e.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", e.NumNodes())
	}
	e.Run(7)
	if e.Round() != 7 {
		t.Errorf("Round after 7 steps = %d", e.Round())
	}
}

// TestCrashAtPastRoundAppliesImmediately is the regression test for the
// silently-dropped late CrashAt: a crash scheduled for a round that already
// ran must fire now, not never.
func TestCrashAtPastRoundAppliesImmediately(t *testing.T) {
	e := NewEngine(perfectMedium{})
	var a, b *echoNode
	idA := e.Attach(geo.Point{}, nil, func(env Env) Node { a = &echoNode{env: env}; return a })
	idB := e.Attach(geo.Point{}, nil, func(env Env) Node { b = &echoNode{env: env}; return b })
	e.Run(5)

	e.CrashAt(idA, 2) // round 2 is long past: must apply immediately
	if e.Alive(idA) {
		t.Fatal("CrashAt for a past round was silently dropped")
	}
	e.Run(3)
	if a.sent != 5 {
		t.Errorf("node crashed late sent %d messages, want 5", a.sent)
	}

	// A crash scheduled for the engine's current round fires before that
	// round's transmissions, exactly like the scheduled path.
	e.CrashAt(idB, e.Round())
	if e.Alive(idB) {
		t.Fatal("CrashAt for the current round did not apply")
	}
	e.Run(1)
	if b.sent != 8 {
		t.Errorf("node crashed at current round sent %d messages, want 8", b.sent)
	}
	if got := e.AliveCount(); got != 0 {
		t.Errorf("AliveCount = %d, want 0", got)
	}
}

// TestChurnLongevity drives a long run in which most nodes die through
// every crash mechanism (Crash, CrashAt, Leave) and checks the engine's
// dead-node bookkeeping: dead nodes never transmit again, the medium keeps
// seeing a reception slot for every node ever attached (the
// len(rxs) == len(nodes) contract), dead entries in the medium's view stay
// marked dead at their final position, and survivors keep exchanging
// messages.
func TestChurnLongevity(t *testing.T) {
	e := NewEngine(perfectMedium{}, WithSeed(3))
	const n = 60
	echoes := make([]*echoNode, n)
	for i := 0; i < n; i++ {
		i := i
		e.Attach(geo.Point{X: float64(i)}, nil, func(env Env) Node {
			echoes[i] = &echoNode{env: env}
			return echoes[i]
		})
	}
	crashedAt := make(map[NodeID]Round)
	e.OnRound(func(r Round, txs []Transmission, rxs []Reception) {
		if len(rxs) != e.NumNodes() {
			t.Fatalf("round %d: %d receptions for %d nodes", r, len(rxs), e.NumNodes())
		}
		for _, tx := range txs {
			if cr, ok := crashedAt[tx.Sender]; ok && r >= cr {
				t.Errorf("round %d: dead node %d transmitted", r, tx.Sender)
			}
		}
	})

	const dead = 45
	for i := 0; i < dead; i++ {
		id := NodeID(i)
		switch i % 3 {
		case 0:
			e.Crash(id)
			crashedAt[id] = e.Round()
		case 1:
			e.Leave(id)
			crashedAt[id] = e.Round()
		case 2:
			e.CrashAt(id, e.Round()+2)
			crashedAt[id] = e.Round() + 2
		}
		e.Run(1)
	}
	e.Run(40)

	if got := e.AliveCount(); got != n-dead {
		t.Errorf("AliveCount = %d, want %d", got, n-dead)
	}
	total := e.Round()
	for i, node := range echoes {
		want := int(total)
		if cr, ok := crashedAt[NodeID(i)]; ok {
			want = int(cr)
		}
		if node.sent != want {
			t.Errorf("node %d sent %d messages, want %d", i, node.sent, want)
		}
	}
	// Survivors still hear each other in the final round.
	last := echoes[n-1].heard[len(echoes[n-1].heard)-1]
	if len(last) != n-dead {
		t.Errorf("survivor heard %d messages in the last round, want %d", len(last), n-dead)
	}
}
