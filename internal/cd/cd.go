// Package cd implements the collision detector classes of Section 2 of the
// paper (following Chockler et al., "Consensus and collision detectors in
// radio networks"). A detector observes, per receiver per round, whether a
// message broadcast within broadcast radius R1 was lost (the completeness
// trigger, Property 1) and whether a message broadcast within interference
// radius R2 was lost (the accuracy bound, Property 2), and emits the ±
// collision notification.
package cd

import (
	"math"

	"vinfra/internal/sim"
)

// Detector decides the ± collision indication for one receiver in one
// round.
//
//   - lostR1: some message broadcast within R1 of the receiver was not
//     delivered. Property 1 (completeness) requires reporting ± whenever
//     this holds.
//   - lostR2: some message broadcast within R2 of the receiver was not
//     delivered. Property 2 (eventual accuracy) requires that, from round
//     r_acc onward, ± is reported only if this holds.
//   - spurious: the adversary requests a false positive this round
//     (detectors that are eventually accurate must suppress it from their
//     accuracy round onward).
//   - rnd: a deterministic uniform [0,1) source for randomized noise.
type Detector interface {
	Report(r sim.Round, lostR1, lostR2, spurious bool, rnd func() float64) bool
}

// Never is a round beyond any simulated horizon, used as an accuracy round
// for detectors that never become accurate.
const Never = sim.Round(math.MaxInt64)

// AC is a complete and (always) accurate collision detector: it reports ±
// exactly when a message broadcast within R2 was lost. Since R1 <= R2,
// losing an R1 message implies losing an R2 message, so AC is complete.
type AC struct{}

// Report implements Detector.
func (AC) Report(_ sim.Round, lostR1, lostR2, _ bool, _ func() float64) bool {
	return lostR1 || lostR2
}

// EventuallyAC is the class 3A-C detector assumed by the paper: complete in
// every round, and accurate from round Racc onward. Before Racc it emits a
// false positive whenever the adversary forces one, plus independently with
// probability FalsePositiveRate per round.
type EventuallyAC struct {
	Racc              sim.Round
	FalsePositiveRate float64
}

// Report implements Detector.
func (d EventuallyAC) Report(r sim.Round, lostR1, lostR2, spurious bool, rnd func() float64) bool {
	if lostR1 || lostR2 {
		// Completeness (and accurate positives).
		return true
	}
	if r < d.Racc {
		if spurious {
			return true
		}
		if d.FalsePositiveRate > 0 && rnd() < d.FalsePositiveRate {
			return true
		}
	}
	return false
}

// Complete is complete but never accurate: false positives (forced or
// randomized) persist forever. It is the 0-accuracy end of the ablation in
// experiment E8; the paper's liveness proof requires eventual accuracy, so
// CHAP over Complete should never stabilize to all-green.
type Complete struct {
	FalsePositiveRate float64
}

// Report implements Detector.
func (d Complete) Report(_ sim.Round, lostR1, lostR2, spurious bool, rnd func() float64) bool {
	if lostR1 || lostR2 || spurious {
		return true
	}
	return d.FalsePositiveRate > 0 && rnd() < d.FalsePositiveRate
}

// Null reports nothing, ever. It violates completeness (Property 1); the
// paper (citing [7,8]) argues consensus is impossible without collision
// detection, and experiment E8 uses Null to demonstrate the resulting
// agreement violations.
type Null struct{}

// Report implements Detector.
func (Null) Report(_ sim.Round, _, _, _ bool, _ func() float64) bool {
	return false
}
