package cd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vinfra/internal/sim"
)

func fixed(v float64) func() float64 {
	return func() float64 { return v }
}

func TestACCompleteness(t *testing.T) {
	d := AC{}
	if !d.Report(0, true, true, false, fixed(0)) {
		t.Error("AC must report when an R1 message is lost")
	}
	if !d.Report(0, false, true, false, fixed(0)) {
		t.Error("AC must report when an R2 message is lost")
	}
	if d.Report(0, false, false, true, fixed(0)) {
		t.Error("AC must ignore forced false positives")
	}
	if d.Report(1000, false, false, false, fixed(0)) {
		t.Error("AC reported with no loss")
	}
}

func TestEventuallyACCompleteness(t *testing.T) {
	// Completeness must hold in every round, before and after Racc.
	d := EventuallyAC{Racc: 100}
	for _, r := range []sim.Round{0, 50, 99, 100, 101, 1 << 30} {
		if !d.Report(r, true, true, false, fixed(1)) {
			t.Errorf("round %d: completeness violated", r)
		}
	}
}

func TestEventuallyACAccuracy(t *testing.T) {
	d := EventuallyAC{Racc: 100, FalsePositiveRate: 1.0}
	// Before Racc: false positives allowed (forced or randomized).
	if !d.Report(99, false, false, true, fixed(1)) {
		t.Error("forced false positive before Racc should be reported")
	}
	if !d.Report(99, false, false, false, fixed(0)) {
		t.Error("randomized false positive before Racc should fire at rate 1")
	}
	// From Racc on: no false positives of either kind.
	if d.Report(100, false, false, true, fixed(0)) {
		t.Error("forced false positive at Racc must be suppressed")
	}
	if d.Report(100, false, false, false, fixed(0)) {
		t.Error("randomized false positive at Racc must be suppressed")
	}
	// Accurate positives (R2 loss) are always allowed.
	if !d.Report(100, false, true, false, fixed(1)) {
		t.Error("R2 loss after Racc should be reported")
	}
}

func TestEventuallyACZeroRateNoRandCall(t *testing.T) {
	d := EventuallyAC{Racc: 100, FalsePositiveRate: 0}
	called := false
	rnd := func() float64 { called = true; return 0 }
	if d.Report(0, false, false, false, rnd) {
		t.Error("zero-rate detector reported spuriously")
	}
	if called {
		t.Error("zero-rate detector consumed randomness")
	}
}

func TestCompleteNeverAccurate(t *testing.T) {
	d := Complete{}
	if !d.Report(1<<40, false, false, true, fixed(1)) {
		t.Error("Complete must honor forced false positives forever")
	}
	if !d.Report(0, true, true, false, fixed(1)) {
		t.Error("Complete must be complete")
	}
	if d.Report(0, false, false, false, fixed(1)) {
		t.Error("Complete with zero rate and no force should stay silent")
	}
	noisy := Complete{FalsePositiveRate: 1}
	if !noisy.Report(1<<40, false, false, false, fixed(0)) {
		t.Error("noisy Complete should fire forever")
	}
}

func TestNullNeverReports(t *testing.T) {
	d := Null{}
	if d.Report(0, true, true, true, fixed(0)) {
		t.Error("Null must never report")
	}
}

// Property: every detector except Null is complete — lostR1 implies a
// report, in any round, with any randomness.
func TestCompletenessProperty(t *testing.T) {
	dets := []Detector{AC{}, EventuallyAC{Racc: 17, FalsePositiveRate: 0.5}, Complete{FalsePositiveRate: 0.3}}
	rng := rand.New(rand.NewSource(7))
	f := func(round uint16, lostR2, spurious bool) bool {
		for _, d := range dets {
			if !d.Report(sim.Round(round), true, lostR2 || true, spurious, rng.Float64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: eventually-accurate detectors never report without an R2 loss
// once past Racc.
func TestEventualAccuracyProperty(t *testing.T) {
	d := EventuallyAC{Racc: 50, FalsePositiveRate: 1}
	rng := rand.New(rand.NewSource(11))
	f := func(after uint16, spurious bool) bool {
		r := sim.Round(50 + int(after))
		return !d.Report(r, false, false, spurious, rng.Float64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
