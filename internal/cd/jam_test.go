package cd_test

import (
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// These tests drive the detector classes through a real radio.Medium under
// an injected faults jammer: adversarial collision patterns must produce
// exactly the per-round indications the model classes specify — real
// losses fire every complete detector, forced (spurious) indications are
// honored or suppressed exactly per class.

var jamRadii = geo.Radii{R1: 10, R2: 20}

// jammer saturates a 3-unit footprint around the receiver position (5, 0)
// for the first 2 rounds of every 4-round cycle.
func jammer() *faults.RegionJammer {
	return &faults.RegionJammer{
		Targets: []geo.Point{{X: 5}},
		Radius:  3,
		Period:  4,
		Burst:   2,
	}
}

func jamActive(r sim.Round) bool { return r%4 < 2 }

// TestJammedLossFiresCompleteDetectors pins the ground-truth side: a
// single uncontended in-range transmission is deliverable every round, so
// in jammed rounds the loss is real (lostR1) and every complete detector
// class must report ±, while in clean rounds the message arrives and the
// accurate classes must stay silent.
func TestJammedLossFiresCompleteDetectors(t *testing.T) {
	for _, tc := range []struct {
		name     string
		det      cd.Detector
		wantJam  bool // indication in jammed rounds (real loss)
		wantIdle bool // indication in clean rounds (no loss, no spurious)
	}{
		{"AC", cd.AC{}, true, false},
		{"EventuallyAC", cd.EventuallyAC{Racc: 100}, true, false},
		{"Complete", cd.Complete{}, true, false},
		{"Null", cd.Null{}, false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := radio.MustMedium(radio.Config{
				Radii:     jamRadii,
				Detector:  tc.det,
				Adversary: jammer(),
			})
			txs := []sim.Transmission{{Sender: 0, From: geo.Point{X: 0}, Msg: "m"}}
			rxs := []sim.NodeInfo{
				{ID: 0, At: geo.Point{X: 0}, Alive: true},
				{ID: 1, At: geo.Point{X: 5}, Alive: true},
			}
			for r := sim.Round(0); r < 20; r++ {
				out := m.Deliver(r, txs, rxs)
				got, wantMsg := out[1], 1
				want := tc.wantIdle
				if jamActive(r) {
					want, wantMsg = tc.wantJam, 0
				}
				if len(got.Msgs) != wantMsg {
					t.Fatalf("round %d: %d messages, want %d", r, len(got.Msgs), wantMsg)
				}
				if got.Collision != want {
					t.Errorf("round %d: collision = %v, want %v", r, got.Collision, want)
				}
			}
		})
	}
}

// TestForcedIndicationHonoredOrSuppressed pins the spurious side: the
// receiver is jammed but nothing is transmitting, so there is no loss at
// all and the indication is purely the adversary's forced one. AC (always
// accurate) must suppress it in every round; EventuallyAC must honor it
// before Racc and suppress it from Racc on; Complete must honor it
// forever; Null reports nothing.
func TestForcedIndicationHonoredOrSuppressed(t *testing.T) {
	const racc = 8
	for _, tc := range []struct {
		name string
		det  cd.Detector
		want func(r sim.Round) bool
	}{
		{"AC", cd.AC{}, func(sim.Round) bool { return false }},
		{"EventuallyAC", cd.EventuallyAC{Racc: racc}, func(r sim.Round) bool {
			return jamActive(r) && r < racc
		}},
		{"Complete", cd.Complete{}, jamActive},
		{"Null", cd.Null{}, func(sim.Round) bool { return false }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := radio.MustMedium(radio.Config{
				Radii:     jamRadii,
				Detector:  tc.det,
				Adversary: jammer(),
			})
			rxs := []sim.NodeInfo{{ID: 0, At: geo.Point{X: 5}, Alive: true}}
			for r := sim.Round(0); r < 16; r++ {
				out := m.Deliver(r, nil, rxs)
				if len(out[0].Msgs) != 0 {
					t.Fatalf("round %d: phantom messages %v", r, out[0].Msgs)
				}
				if got, want := out[0].Collision, tc.want(r); got != want {
					t.Errorf("round %d: collision = %v, want %v", r, got, want)
				}
			}
		})
	}
}

// TestJamFootprintIsExact pins spatial scoping: a receiver outside the
// jammer's footprint keeps hearing cleanly through every burst, on the
// same medium whose in-footprint receiver is silenced.
func TestJamFootprintIsExact(t *testing.T) {
	m := radio.MustMedium(radio.Config{
		Radii:     jamRadii,
		Detector:  cd.AC{},
		Adversary: jammer(),
	})
	// Sender at x=14: within R1 of the far receiver at x=9.5 (outside the
	// 3-unit footprint around x=5) and within R1 of the jammed receiver at
	// x=6 (inside it).
	txs := []sim.Transmission{{Sender: 0, From: geo.Point{X: 14}, Msg: "m"}}
	rxs := []sim.NodeInfo{
		{ID: 0, At: geo.Point{X: 14}, Alive: true},
		{ID: 1, At: geo.Point{X: 6}, Alive: true},
		{ID: 2, At: geo.Point{X: 9.5}, Alive: true},
	}
	for r := sim.Round(0); r < 12; r++ {
		out := m.Deliver(r, txs, rxs)
		if len(out[2].Msgs) != 1 || out[2].Collision {
			t.Errorf("round %d: out-of-footprint receiver disturbed: %+v", r, out[2])
		}
		wantMsgs, wantCol := 1, false
		if jamActive(r) {
			wantMsgs, wantCol = 0, true
		}
		if len(out[1].Msgs) != wantMsgs || out[1].Collision != wantCol {
			t.Errorf("round %d: in-footprint receiver: %+v", r, out[1])
		}
	}
}
